// Package cluster implements the paper's first future-work direction
// (§IX): scaling the distributed particle filter *up* from a single
// many-core device to a cluster of them.
//
// The design follows directly from the paper's argument: because every
// operation is local to a sub-filter except the thin particle exchange,
// the sub-filter network can be partitioned across nodes; only exchange
// edges that cross a node boundary become network messages. Each node
// runs its own device pipeline (rand → sampling → sort → estimate →
// resample) over a contiguous slice of the global ring of sub-filters,
// and the cluster layer performs the global exchange, counting inter-node
// traffic against a configurable network profile (latency + bandwidth) so
// experiments can predict communication cost on Gigabit Ethernet vs
// InfiniBand-class fabrics.
//
// The package also supports fault injection (FailNode/RestoreNode): a
// failed node freezes — it neither computes, exchanges, nor contributes
// to the estimate — which lets the experiments quantify how quickly the
// surviving sub-filter network re-acquires the target, a robustness
// property centralized filters do not have.
package cluster

import (
	"fmt"
	"sync"
	"time"

	"esthera/internal/device"
	"esthera/internal/exchange"
	"esthera/internal/filter"
	"esthera/internal/kernels"
	"esthera/internal/model"
	"esthera/internal/rng"
)

// NetworkProfile models the cluster interconnect for the communication-
// cost predictions.
type NetworkProfile struct {
	Name         string
	Latency      time.Duration // per message
	BandwidthGBs float64       // payload bandwidth
}

// GigabitEthernet returns a 1 GbE profile (~50 µs latency).
func GigabitEthernet() NetworkProfile {
	return NetworkProfile{Name: "1GbE", Latency: 50 * time.Microsecond, BandwidthGBs: 0.117}
}

// TenGigabitEthernet returns a 10 GbE profile.
func TenGigabitEthernet() NetworkProfile {
	return NetworkProfile{Name: "10GbE", Latency: 20 * time.Microsecond, BandwidthGBs: 1.17}
}

// InfiniBandQDR returns a QDR InfiniBand profile (~1.3 µs latency).
func InfiniBandQDR() NetworkProfile {
	return NetworkProfile{Name: "IB-QDR", Latency: 1300 * time.Nanosecond, BandwidthGBs: 4.0}
}

// Config parameterizes a cluster filter.
type Config struct {
	// Nodes is the cluster size.
	Nodes int
	// SubFiltersPerNode and ParticlesPer shape each node's network slice.
	SubFiltersPerNode int
	ParticlesPer      int
	// ExchangeCount is t for the global ring exchange.
	ExchangeCount int
	// Network selects the interconnect profile (default GigabitEthernet).
	Network NetworkProfile
	// WorkersPerNode sizes each node's device (0 = 1: nodes in this
	// simulation share the host, so oversubscription is the caller's
	// choice).
	WorkersPerNode int
	// Resampler selects the per-node resampling kernel.
	Resampler kernels.Algo
}

// Cluster is a distributed particle filter partitioned over simulated
// cluster nodes. It implements filter.Filter.
type Cluster struct {
	cfg Config
	m   model.Model
	dim int

	nodes []*node
	// failMu guards failed: fault injection (FailNode/RestoreNode) may be
	// called from a different goroutine than Step, modeling failures that
	// strike while a round is in flight. Step snapshots the flags once at
	// round start, so a mid-round failure takes effect at the next round —
	// a node cannot half-participate in a round.
	failMu sync.Mutex
	failed []bool
	seed   uint64
	k      int

	// Communication accounting (inter-node messages only).
	commBytes int64
	commMsgs  int64
	rounds    int64

	outbox []float64 // global staging: S·t·(dim+1)
}

// node is one cluster member: a device pipeline over its sub-filter slice.
type node struct {
	pipe *kernels.Pipeline
	dev  *device.Device
}

// New builds the cluster filter.
func New(m model.Model, cfg Config, seed uint64) (*Cluster, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("cluster: non-positive node count %d", cfg.Nodes)
	}
	if cfg.SubFiltersPerNode <= 0 || cfg.ParticlesPer <= 0 {
		return nil, fmt.Errorf("cluster: invalid node shape %d×%d", cfg.SubFiltersPerNode, cfg.ParticlesPer)
	}
	if cfg.ExchangeCount < 0 || 2*cfg.ExchangeCount >= cfg.ParticlesPer {
		return nil, fmt.Errorf("cluster: exchange count %d incompatible with sub-filter size %d",
			cfg.ExchangeCount, cfg.ParticlesPer)
	}
	if cfg.Network.Name == "" {
		cfg.Network = GigabitEthernet()
	}
	if cfg.WorkersPerNode <= 0 {
		cfg.WorkersPerNode = 1
	}
	c := &Cluster{cfg: cfg, m: m, dim: m.StateDim()}
	c.nodes = make([]*node, cfg.Nodes)
	c.failed = make([]bool, cfg.Nodes)
	total := cfg.Nodes * cfg.SubFiltersPerNode
	c.outbox = make([]float64, total*max(cfg.ExchangeCount, 1)*(c.dim+1))
	for i := range c.nodes {
		dev := device.New(device.Config{Workers: cfg.WorkersPerNode, LocalMemBytes: -1})
		top, err := exchange.NewTopology(exchange.None, cfg.SubFiltersPerNode)
		if err != nil {
			return nil, err
		}
		pipe, err := kernels.New(dev, m, kernels.Config{
			SubFilters:   cfg.SubFiltersPerNode,
			ParticlesPer: cfg.ParticlesPer,
			Topology:     top,
			Resampler:    cfg.Resampler,
		}, rng.StreamSeed(seed, i))
		if err != nil {
			return nil, err
		}
		c.nodes[i] = &node{pipe: pipe, dev: dev}
	}
	c.seed = seed
	return c, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Name implements filter.Filter.
func (c *Cluster) Name() string { return "cluster" }

// TotalParticles returns the global population size.
func (c *Cluster) TotalParticles() int {
	return c.cfg.Nodes * c.cfg.SubFiltersPerNode * c.cfg.ParticlesPer
}

// Reset implements filter.Filter.
func (c *Cluster) Reset(seed uint64) {
	c.seed = seed
	c.k = 0
	c.commBytes, c.commMsgs, c.rounds = 0, 0, 0
	for i, n := range c.nodes {
		n.pipe.Reset(rng.StreamSeed(seed, i))
	}
	c.failMu.Lock()
	for i := range c.failed {
		c.failed[i] = false
	}
	c.failMu.Unlock()
}

// FailNode freezes node i: it stops computing, exchanging and
// contributing to estimates until RestoreNode. Safe to call from a
// different goroutine than Step; the failure takes effect at the next
// round boundary.
func (c *Cluster) FailNode(i int) {
	c.failMu.Lock()
	defer c.failMu.Unlock()
	if i >= 0 && i < len(c.failed) {
		c.failed[i] = true
	}
}

// RestoreNode brings a failed node back. Its (stale) particles rejoin the
// computation and are refreshed by the ongoing exchange and resampling.
// Safe to call from a different goroutine than Step.
func (c *Cluster) RestoreNode(i int) {
	c.failMu.Lock()
	defer c.failMu.Unlock()
	if i >= 0 && i < len(c.failed) {
		c.failed[i] = false
	}
}

// FailedNodes returns the number of currently failed nodes.
func (c *Cluster) FailedNodes() int {
	c.failMu.Lock()
	defer c.failMu.Unlock()
	n := 0
	for _, f := range c.failed {
		if f {
			n++
		}
	}
	return n
}

// failedSnapshot copies the fault flags for one round's consistent view.
func (c *Cluster) failedSnapshot() []bool {
	c.failMu.Lock()
	defer c.failMu.Unlock()
	return append([]bool(nil), c.failed...)
}

// Step implements filter.Filter: one global filtering round.
func (c *Cluster) Step(u, z []float64) filter.Estimate {
	c.k++
	c.rounds++
	failed := c.failedSnapshot()

	// Phase 1 (per node, concurrently): local kernels up to the sorted
	// state and the node-local best.
	type nodeBest struct {
		state []float64
		logw  float64
		ok    bool
	}
	bests := make([]nodeBest, len(c.nodes))
	var wg sync.WaitGroup
	for i, n := range c.nodes {
		if failed[i] {
			continue
		}
		wg.Add(1)
		go func(i int, n *node) {
			defer wg.Done()
			n.pipe.KernelRand()
			n.pipe.KernelSampleWeight(u, z, c.k)
			n.pipe.KernelSortLocal()
			state, lw := n.pipe.KernelEstimate()
			bests[i] = nodeBest{state: state, logw: lw, ok: true}
		}(i, n)
	}
	wg.Wait()

	// Phase 2: global ring exchange across the whole sub-filter network;
	// inter-node edges are counted as network traffic.
	c.exchangeGlobal(failed)

	// Phase 3 (per node): local resampling.
	for i, n := range c.nodes {
		if failed[i] {
			continue
		}
		wg.Add(1)
		go func(n *node) {
			defer wg.Done()
			n.pipe.KernelResample()
		}(n)
	}
	wg.Wait()

	// Global estimate over surviving nodes.
	best := filter.Estimate{State: make([]float64, c.dim), LogWeight: negInf}
	for _, nb := range bests {
		if nb.ok && nb.logw > best.LogWeight {
			copy(best.State, nb.state)
			best.LogWeight = nb.logw
		}
	}
	return best
}

const negInf = -1.7976931348623157e308

// exchangeGlobal performs the ring exchange over all S sub-filters,
// under the round's snapshot of the fault flags.
func (c *Cluster) exchangeGlobal(failed []bool) {
	t := c.cfg.ExchangeCount
	if t == 0 {
		return
	}
	spn := c.cfg.SubFiltersPerNode
	mp := c.cfg.ParticlesPer
	dim := c.dim
	stride := dim + 1
	S := c.cfg.Nodes * spn

	// Stage every live sub-filter's top-t into the global outbox.
	for g := 0; g < S; g++ {
		nodeIdx := g / spn
		if failed[nodeIdx] {
			continue
		}
		local := g % spn
		p := c.nodes[nodeIdx].pipe.Particles()
		lw := c.nodes[nodeIdx].pipe.LogWeights()
		base := local * mp * dim
		for i := 0; i < t; i++ {
			rec := c.outbox[(g*t+i)*stride : (g*t+i+1)*stride]
			copy(rec[:dim], p[base+i*dim:base+(i+1)*dim])
			rec[dim] = lw[local*mp+i]
		}
	}
	// Deliver: each live sub-filter pulls from its ring neighbors; pulls
	// from failed senders are skipped (their slots keep native
	// particles). Inter-node pulls are counted as messages.
	for g := 0; g < S; g++ {
		nodeIdx := g / spn
		if failed[nodeIdx] {
			continue
		}
		local := g % spn
		p := c.nodes[nodeIdx].pipe.Particles()
		lw := c.nodes[nodeIdx].pipe.LogWeights()
		base := local * mp * dim
		neighbors := [2]int{(g - 1 + S) % S, (g + 1) % S}
		slot := mp - 2*t
		for _, q := range neighbors {
			qNode := q / spn
			if failed[qNode] {
				slot += t
				continue
			}
			if qNode != nodeIdx {
				c.commMsgs++
				c.commBytes += int64(t * stride * 8)
			}
			for i := 0; i < t; i++ {
				rec := c.outbox[(q*t+i)*stride : (q*t+i+1)*stride]
				copy(p[base+slot*dim:base+(slot+1)*dim], rec[:dim])
				lw[local*mp+slot] = rec[dim]
				slot++
			}
		}
	}
}

// CommStats returns the accumulated inter-node traffic.
func (c *Cluster) CommStats() (bytes, messages int64) { return c.commBytes, c.commMsgs }

// PredictCommPerRound converts the measured per-round traffic into a
// communication-time prediction under the configured network profile.
// Messages from different node pairs overlap; the cost is the busiest
// node's share (each node exchanges with two neighbor nodes per round).
func (c *Cluster) PredictCommPerRound() time.Duration {
	if c.rounds == 0 || c.cfg.Nodes == 1 {
		return 0
	}
	msgsPerRound := float64(c.commMsgs) / float64(c.rounds)
	bytesPerRound := float64(c.commBytes) / float64(c.rounds)
	live := float64(c.cfg.Nodes - c.FailedNodes())
	if live == 0 {
		return 0
	}
	perNodeMsgs := msgsPerRound / live
	perNodeBytes := bytesPerRound / live
	sec := perNodeMsgs*c.cfg.Network.Latency.Seconds() + perNodeBytes/(c.cfg.Network.BandwidthGBs*1e9)
	return time.Duration(sec * float64(time.Second))
}

// Nodes returns the node count.
func (c *Cluster) Nodes() int { return c.cfg.Nodes }

// NodeProfiler exposes node i's device profiler (for scaling experiments).
func (c *Cluster) NodeProfiler(i int) *device.Profiler { return c.nodes[i].dev.Profiler() }

var _ filter.Filter = (*Cluster)(nil)
