package cluster_test

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"esthera/internal/cluster"
	"esthera/internal/rng"
	"esthera/internal/telemetry"
)

// TestClusterScrapeDuringFailures steps a cluster while a fault
// injector fails and restores nodes and two scrapers hammer /metrics in
// both formats — run under -race, this is the exposition-path race test
// for the cluster layer. Every Prometheus body must pass the
// exposition-format lint, including mid-degradation ones.
func TestClusterScrapeDuringFailures(t *testing.T) {
	m, sc := armScenario(t)
	c := newCluster(t, m, 4)
	ts := httptest.NewServer(cluster.NewMetricsHandler(c))
	defer ts.Close()

	const rounds = 40
	stop := make(chan struct{})
	var wg sync.WaitGroup

	wg.Add(1)
	go func() { // fault injector
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			node := i % 4
			c.FailNode(node)
			c.RestoreNode(node)
		}
	}()

	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) { // scrapers
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				url := ts.URL + "/metrics"
				if (i+w)%2 == 0 {
					url += "?format=prometheus"
				}
				resp, err := http.Get(url)
				if err != nil {
					t.Errorf("scrape: %v", err)
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					t.Errorf("scrape: status %d err %v", resp.StatusCode, err)
					return
				}
				if strings.Contains(url, "prometheus") {
					if err := telemetry.LintPrometheus(strings.NewReader(string(body))); err != nil {
						t.Errorf("prometheus lint mid-failure: %v", err)
						return
					}
				}
			}
		}(w)
	}

	truth := make([]float64, m.StateDim())
	z := make([]float64, m.MeasurementDim())
	u := make([]float64, m.ControlDim())
	measR := rng.New(rng.NewPhiloxStream(21, 0xC0DE))
	for k := 1; k <= rounds; k++ {
		sc.TrueState(k, truth)
		sc.Control(k, u)
		m.Measure(z, truth, measR)
		c.Step(u, z)
	}
	close(stop)
	wg.Wait()

	h := c.Health()
	if h.Rounds != rounds {
		t.Errorf("rounds %d, want %d", h.Rounds, rounds)
	}
	if len(h.ExchangeContrib) != 4 {
		t.Fatalf("exchange contrib vector has %d entries, want 4", len(h.ExchangeContrib))
	}
	var total int64
	for _, n := range h.ExchangeContrib {
		total += n
	}
	if total == 0 {
		t.Error("no exchange contributions recorded across the run")
	}

	// The final scrape must expose the per-node contribution series.
	resp, err := http.Get(ts.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"esthera_cluster_rounds_total " + strconv.Itoa(rounds),
		`esthera_cluster_node_exchange_contrib_total{node="0"}`,
		`esthera_cluster_node_exchange_contrib_total{node="3"}`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("final scrape missing %q", want)
		}
	}
}
