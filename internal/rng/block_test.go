package rng

import "testing"

// skipReference advances by drawing and discarding, the semantics Skip
// must reproduce exactly.
func skipReference(src BlockSource, n int) {
	var w [1]uint32
	for i := 0; i < n; i++ {
		src.Block(w[:])
	}
}

func TestSkipMatchesDiscard(t *testing.T) {
	mk := map[string]func() BlockSource{
		"philox": func() BlockSource { return NewPhiloxStream(99, 3) },
		"mtgp":   func() BlockSource { return NewMTGP(99, 3) },
	}
	for name, f := range mk {
		for _, skip := range []int{0, 1, 2, 3, 4, 5, 7, 8, 13, 623, 624, 625, 4096, 10001} {
			a, b := f(), f()
			a.(Skipper).Skip(skip)
			skipReference(b, skip)
			for i := 0; i < 16; i++ {
				if got, want := a.Uint64(), b.Uint64(); got != want {
					t.Fatalf("%s: after Skip(%d), draw %d = %x, want %x", name, skip, i, got, want)
				}
			}
		}
	}
}

func TestSkipInterleavedWithDraws(t *testing.T) {
	a := NewPhiloxStream(7, 1)
	b := NewPhiloxStream(7, 1)
	// Put both mid-block, then skip across block boundaries.
	a.Uint32()
	var w [1]uint32
	b.Block(w[:])
	a.Skip(6)
	skipReference(b, 6)
	if got, want := a.Uint64(), b.Uint64(); got != want {
		t.Fatalf("mid-block skip diverged: %x vs %x", got, want)
	}
}

// TestLazyBufferMatchesEager pins the core lazy-buffer invariant: the
// draw stream, including overflow past the block and across Refills,
// is identical to an eagerly generated block.
func TestLazyBufferMatchesEager(t *testing.T) {
	const capacity = 37 // odd, to exercise the unserved-tail word
	lazy := NewBuffer(capacity, NewPhiloxStream(5, 2))
	ref := NewPhiloxStream(5, 2)
	refBits := make([]uint32, capacity)
	for round := 0; round < 3; round++ {
		lazy.Refill()
		ref.Block(refBits)
		pos := 0
		// Consume an uneven mix: some draws inside the block, then
		// overflow beyond it.
		for i := 0; i < capacity/2+4; i++ {
			var want uint64
			if pos+2 <= capacity {
				want = uint64(refBits[pos])<<32 | uint64(refBits[pos+1])
				pos += 2
			} else {
				want = ref.Uint64()
			}
			if got := lazy.Uint64(); got != want {
				t.Fatalf("round %d draw %d: %x, want %x", round, i, got, want)
			}
		}
	}
}

// TestLazyBufferSaveStateMatchesEager asserts checkpoint bytes are what
// eager generation would have produced, even when the block is only
// partially consumed at save time.
func TestLazyBufferSaveStateMatchesEager(t *testing.T) {
	const capacity = 32
	lazy := NewBuffer(capacity, NewPhiloxStream(11, 4))
	ref := NewPhiloxStream(11, 4)
	refBits := make([]uint32, capacity)
	lazy.Refill()
	ref.Block(refBits)
	for i := 0; i < 5; i++ {
		lazy.Uint64()
	}
	st := lazy.SaveState()
	if got := int(st.Words[0]); got != 10 {
		t.Fatalf("saved pos %d, want 10", got)
	}
	for i, w := range st.Words[1:] {
		if w != refBits[i] {
			t.Fatalf("saved block word %d = %x, want eager %x", i, w, refBits[i])
		}
	}
	// The saved fallback must sit at the post-block position.
	if len(st.Sub) != 1 {
		t.Fatal("buffer state missing fallback sub-state")
	}
	var p Philox4x32
	if err := p.RestoreState(st.Sub[0]); err != nil {
		t.Fatal(err)
	}
	if got, want := p.Uint64(), ref.Uint64(); got != want {
		t.Fatalf("restored fallback draw %x, want %x", got, want)
	}
	// And a restored buffer must replay identically to the original.
	clone := NewBuffer(capacity, NewPhilox(0))
	if err := clone.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < capacity; i++ {
		if got, want := clone.Uint64(), lazy.Uint64(); got != want {
			t.Fatalf("restored draw %d: %x, want %x", i, got, want)
		}
	}
}

func TestFillNormalsMatchesScalar(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 7, 16, 33} {
		for _, preSpare := range []bool{false, true} {
			va := New(NewBuffer(256, NewPhiloxStream(21, 1)))
			vb := New(NewBuffer(256, NewPhiloxStream(21, 1)))
			va.src.(*Buffer).Refill()
			vb.src.(*Buffer).Refill()
			if preSpare {
				va.NormFloat64()
				vb.NormFloat64()
			}
			got := make([]float64, n)
			va.FillNormals(got)
			for i := 0; i < n; i++ {
				if want := vb.NormFloat64(); got[i] != want {
					t.Fatalf("n=%d preSpare=%v: normal %d = %v, want %v", n, preSpare, i, got[i], want)
				}
			}
			// Spare caches must agree so subsequent draws stay aligned.
			if ga, gb := va.NormFloat64(), vb.NormFloat64(); ga != gb {
				t.Fatalf("n=%d preSpare=%v: post-fill draw diverged: %v vs %v", n, preSpare, ga, gb)
			}
		}
	}
}

func TestFillNormalsSpansBlockOverflow(t *testing.T) {
	// A tiny block forces the buffered fast path to hand off to the
	// scalar overflow path mid-fill.
	va := New(NewBuffer(10, NewPhiloxStream(33, 2)))
	vb := New(NewBuffer(10, NewPhiloxStream(33, 2)))
	va.src.(*Buffer).Refill()
	vb.src.(*Buffer).Refill()
	got := make([]float64, 12)
	va.FillNormals(got)
	for i := range got {
		if want := vb.NormFloat64(); got[i] != want {
			t.Fatalf("normal %d = %v, want %v", i, got[i], want)
		}
	}
}

func TestFillUniformsMatchesScalar(t *testing.T) {
	for _, n := range []int{0, 1, 5, 64, 200} {
		va := New(NewBuffer(128, NewPhiloxStream(44, 9)))
		vb := New(NewBuffer(128, NewPhiloxStream(44, 9)))
		va.src.(*Buffer).Refill()
		vb.src.(*Buffer).Refill()
		got := make([]float64, n)
		va.FillUniforms(got)
		for i := 0; i < n; i++ {
			if want := vb.Float64(); got[i] != want {
				t.Fatalf("n=%d: uniform %d = %v, want %v", n, i, got[i], want)
			}
		}
	}
}

func TestScratchDrawsAreReused(t *testing.T) {
	r := New(NewPhilox(1))
	a := r.Normals(16)
	b := r.Normals(8)
	if &a[0] != &b[0] {
		t.Error("Normals scratch was reallocated for a smaller request")
	}
	u1 := r.Uniforms(16)
	u2 := r.Uniforms(16)
	if &u1[0] != &u2[0] {
		t.Error("Uniforms scratch was reallocated for an equal request")
	}
}
