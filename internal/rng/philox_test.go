package rng

import (
	"testing"
	"testing/quick"
)

// TestPhiloxKnownAnswer checks the all-zero known-answer test vector from
// the Random123 distribution.
func TestPhiloxKnownAnswer(t *testing.T) {
	got := Round4x32([2]uint32{0, 0}, [4]uint32{0, 0, 0, 0})
	want := [4]uint32{0x6627E8D5, 0xE169C58D, 0xBC57AC4C, 0x9B00DBD8}
	if got != want {
		t.Fatalf("philox4x32-10(0,0) = %08x, want %08x", got, want)
	}
}

// TestPhiloxBijection exercises the property that Philox is a bijection on
// counters for a fixed key: distinct counters map to distinct outputs.
func TestPhiloxBijection(t *testing.T) {
	key := [2]uint32{0xDEADBEEF, 0xCAFEF00D}
	seen := make(map[[4]uint32][4]uint32, 1<<14)
	for i := uint32(0); i < 1<<14; i++ {
		out := Round4x32(key, [4]uint32{i, 0, 0, 0})
		if prev, dup := seen[out]; dup {
			t.Fatalf("collision: counters %v and %v both map to %v", prev, [4]uint32{i, 0, 0, 0}, out)
		}
		seen[out] = [4]uint32{i, 0, 0, 0}
	}
}

// TestPhiloxCounterSensitivity: flipping any single counter bit changes
// roughly half of the output bits (avalanche).
func TestPhiloxCounterSensitivity(t *testing.T) {
	key := [2]uint32{1, 2}
	base := Round4x32(key, [4]uint32{10, 20, 30, 40})
	totalFlipped := 0
	cases := 0
	for word := 0; word < 4; word++ {
		for bit := uint(0); bit < 32; bit++ {
			ctr := [4]uint32{10, 20, 30, 40}
			ctr[word] ^= 1 << bit
			out := Round4x32(key, ctr)
			flipped := 0
			for w := 0; w < 4; w++ {
				x := out[w] ^ base[w]
				for x != 0 {
					flipped += int(x & 1)
					x >>= 1
				}
			}
			totalFlipped += flipped
			cases++
			if flipped < 20 {
				t.Fatalf("weak avalanche: word %d bit %d flipped only %d output bits", word, bit, flipped)
			}
		}
	}
	avg := float64(totalFlipped) / float64(cases)
	if avg < 58 || avg > 70 { // expect ≈ 64 of 128
		t.Fatalf("average avalanche %0.1f bits, want ≈ 64", avg)
	}
}

func TestPhiloxStreamIndependence(t *testing.T) {
	// Adjacent streams must not be correlated: compare 64-bit outputs of
	// streams 0 and 1 and count matching bits; expect ≈ 50%.
	a := NewPhiloxStream(42, 0)
	b := NewPhiloxStream(42, 1)
	match := 0
	const n = 10000
	for i := 0; i < n; i++ {
		x := a.Uint64() ^ b.Uint64()
		for x != 0 {
			match += int(x & 1)
			x >>= 1
		}
	}
	frac := float64(match) / float64(n*64)
	if frac < 0.49 || frac > 0.51 {
		t.Fatalf("inter-stream bit-difference fraction %v, want ≈ 0.5", frac)
	}
}

func TestPhiloxSetCounter(t *testing.T) {
	p := NewPhilox(7)
	// Consume 8 words = 2 blocks.
	for i := 0; i < 8; i++ {
		p.Uint32()
	}
	third := p.Uint32()
	q := NewPhilox(7)
	q.SetCounter(2, 0, 0, 0)
	if got := q.Uint32(); got != third {
		t.Fatalf("SetCounter(2): got %x, want %x", got, third)
	}
}

func TestPhiloxCounterCarry(t *testing.T) {
	p := NewPhilox(1)
	p.SetCounter(0xFFFFFFFF, 0xFFFFFFFF, 0, 0)
	p.refill()
	if p.ctr != [4]uint32{0, 0, 1, 0} {
		t.Fatalf("counter carry wrong: %v", p.ctr)
	}
}

func TestPhiloxBlockMatchesScalar(t *testing.T) {
	a := NewPhilox(123)
	b := NewPhilox(123)
	blk := make([]uint32, 1003)
	a.Block(blk)
	for i, v := range blk {
		if w := b.Uint32(); v != w {
			t.Fatalf("block/scalar mismatch at %d: %x vs %x", i, v, w)
		}
	}
}

func TestPhiloxUniformity(t *testing.T) {
	checkUniformBits(t, NewPhilox(2024), 200000)
}

// TestPhiloxQuickDistinctSeeds is a property-based check: distinct seeds
// produce distinct first outputs (Philox is a PRF keyed by the seed).
func TestPhiloxQuickDistinctSeeds(t *testing.T) {
	f := func(s1, s2 uint64) bool {
		if s1 == s2 {
			return true
		}
		return NewPhilox(s1).Uint64() != NewPhilox(s2).Uint64()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
