package rng

// SplitMix64 is Steele, Lea & Flood's splittable generator. It passes
// BigCrush, has a full 2^64 period, and — most importantly here — turns an
// arbitrary (possibly poor) seed into a well-mixed state, which is why it
// is the recommended seeder for xoshiro and why this package uses it to
// derive per-stream seeds for sub-filter generators.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Seed resets the generator state.
func (s *SplitMix64) Seed(seed uint64) { s.state = seed }

// Uint64 returns the next value of the sequence.
func (s *SplitMix64) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Mix64 applies the SplitMix64 finalizer to x. It is a strong 64-bit
// bijective mixer used to derive decorrelated stream seeds from
// (masterSeed, streamID) pairs.
func Mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// StreamSeed derives the seed for stream id from a master seed such that
// distinct (seed, id) pairs map to well-separated seeds.
func StreamSeed(master uint64, id int) uint64 {
	return Mix64(master ^ Mix64(uint64(id)+0x632BE59BD9B4E019))
}
