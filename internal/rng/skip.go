package rng

// Skipper is a stream that can discard the next n 32-bit words without
// producing them. Counter-based generators implement it in O(1); the
// lazy Buffer uses it at Refill to advance its fallback past the
// unconsumed tail of the previous block without paying for generation.
type Skipper interface {
	// Skip advances the stream position by n 32-bit words, exactly as if
	// n words had been drawn and discarded.
	Skip(n int)
}

// skipWords advances src by n 32-bit words, using Skip when the source
// supports it and generate-and-discard otherwise.
func skipWords(src BlockSource, n int) {
	if n <= 0 {
		return
	}
	if s, ok := src.(Skipper); ok {
		s.Skip(n)
		return
	}
	var scratch [64]uint32
	for n > 0 {
		c := min(n, len(scratch))
		src.Block(scratch[:c])
		n -= c
	}
}

// Skip implements Skipper in O(1): buffered words are drained, whole
// 4-word blocks advance the 128-bit counter directly, and a partial
// block costs one bijection evaluation.
func (p *Philox4x32) Skip(n int) {
	if n <= 0 {
		return
	}
	if p.n > 0 {
		take := min(p.n, n)
		p.n -= take
		n -= take
		if n == 0 {
			return
		}
	}
	p.advance(uint64(n / 4))
	if rem := n % 4; rem > 0 {
		p.refill()
		p.n = 4 - rem
	}
}

// advance adds blocks to the 128-bit counter (the jump-ahead Philox is
// built for: position is a pure function of the counter).
func (p *Philox4x32) advance(blocks uint64) {
	if blocks == 0 {
		return
	}
	lo := uint64(p.ctr[0]) | uint64(p.ctr[1])<<32
	hi := uint64(p.ctr[2]) | uint64(p.ctr[3])<<32
	olo := lo
	lo += blocks
	if lo < olo {
		hi++
	}
	p.ctr[0], p.ctr[1] = uint32(lo), uint32(lo>>32)
	p.ctr[2], p.ctr[3] = uint32(hi), uint32(hi>>32)
}

// Skip implements Skipper by advancing the twister index without the
// per-word tempering (the recurrence must still run, but tempering is
// stateless and can be elided for discarded words).
func (m *MT19937) Skip(n int) {
	for n > 0 {
		if m.index >= mtN {
			m.generate()
		}
		take := min(mtN-m.index, n)
		m.index += take
		n -= take
	}
}

// Skip implements Skipper; the per-stream tempering layer is stateless,
// so skipping reduces to skipping the underlying twister.
func (g *MTGP) Skip(n int) { g.mt.Skip(n) }

var (
	_ Skipper = (*Philox4x32)(nil)
	_ Skipper = (*MT19937)(nil)
	_ Skipper = (*MTGP)(nil)
)
