package rng

import "math"

// Ziggurat sampling of the standard normal distribution (Marsaglia & Tsang
// 2000), provided as the fast CPU-side alternative to Box-Muller. The
// paper's CPU port spent a large fraction of its runtime in the
// PRNG+transform stage; Ziggurat is the standard remedy on architectures
// that tolerate branches well (§V-B notes CPUs do), so the toolkit exposes
// it as an ablation (see Rand.UseZiggurat).
//
// Construction: 128 horizontal layers of equal area V under the
// unnormalized density f(x) = exp(-x²/2) (the classic 128-layer normal
// tables; R and V below are Marsaglia & Tsang's constants for n = 128).
// Edges zigX[0] > zigX[1] > ... > zigX[128] = 0 are built by the
// recurrence f(x[i+1]) = f(x[i]) + V/x[i]; zigX[0] = V/f(R) is the
// pseudo-edge of the base layer, zigX[1] = R.
const (
	zigLayers = 128
	zigR      = 3.442619855899 // rightmost true edge
	zigV      = 9.91256303526217e-3
)

var (
	zigX [zigLayers + 1]float64 // layer right edges, decreasing
	zigF [zigLayers + 1]float64 // f(zigX[i]); zigF[0] = f(R)
)

func init() {
	f := math.Exp(-0.5 * zigR * zigR)
	zigX[0] = zigV / f
	zigF[0] = f
	zigX[1] = zigR
	zigF[1] = f
	for i := 1; i < zigLayers; i++ {
		y := zigF[i] + zigV/zigX[i]
		if y >= 1 {
			zigX[i+1] = 0
			zigF[i+1] = 1
			continue
		}
		zigX[i+1] = math.Sqrt(-2 * math.Log(y))
		zigF[i+1] = y
	}
	zigX[zigLayers] = 0
	zigF[zigLayers] = 1
}

// ziggurat returns one standard normal deviate using the layer tables.
func (r *Rand) ziggurat() float64 {
	for {
		u := r.src.Uint64()
		i := int(u & 0x7F) // layer 0..127
		sign := 1.0
		if u&0x80 != 0 {
			sign = -1.0
		}
		// 52-bit uniform in [0,1) for the horizontal position.
		f := float64(u>>12) * (1.0 / (1 << 52))
		x := f * zigX[i]
		if x < zigX[i+1] {
			return sign * x // strictly inside the layer: accept
		}
		if i == 0 {
			// Tail beyond R: Marsaglia's exact tail algorithm.
			for {
				x = -math.Log(r.OpenFloat64()) / zigR
				y := -math.Log(r.OpenFloat64())
				if 2*y >= x*x {
					return sign * (zigR + x)
				}
			}
		}
		// Wedge: y uniform in [f(x_i), f(x_{i+1})]; accept below curve.
		y := zigF[i] + (zigF[i+1]-zigF[i])*r.Float64()
		if y < math.Exp(-0.5*x*x) {
			return sign * x
		}
	}
}
