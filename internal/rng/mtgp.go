package rng

// MTGP is an MTGP-style block generator: the Mersenne Twister linear
// recurrence equipped with *per-stream* parameters so that a large number
// of streams (one per work-group / sub-filter) are mutually decorrelated.
//
// The original MTGP (Saito 2010, "A Variant of Mersenne Twister Suitable
// for Graphic Processors") ships precomputed parameter tables for up to
// 2^14 streams, each stream differing in its recursion and tempering
// constants. Reproducing those exact tables offline is neither possible
// nor necessary for this study; what matters for the filter is the design
// property the paper relies on: a common MT-type recurrence, per-stream
// output transformations, block generation of a whole round's numbers at
// once, and stream independence. This implementation keeps the MT19937
// recurrence (whose equidistribution properties are proven) and derives a
// per-stream 4-constant tempering table plus a distinct state seeding from
// SplitMix64(streamID), which is the standard substitute when genuine MTGP
// parameter sets are unavailable. DESIGN.md records this substitution.
type MTGP struct {
	mt     MT19937
	stream uint64
	master uint64
	// Per-stream tempering constants (applied after MT's own tempering;
	// an extra xor-shift-multiply layer keyed by the stream).
	t0, t1 uint32
}

// NewMTGP returns the block generator for the given stream id under the
// given master seed. Distinct (master, stream) pairs yield decorrelated
// sequences.
func NewMTGP(master uint64, stream int) *MTGP {
	g := &MTGP{}
	g.master = master
	g.stream = uint64(stream)
	g.Seed(master)
	return g
}

// Seed re-derives the state from (master=seed, stream).
func (g *MTGP) Seed(seed uint64) {
	g.master = seed
	s := StreamSeed(seed, int(g.stream))
	var key [4]uint32
	sm := NewSplitMix64(s)
	for i := range key {
		key[i] = uint32(sm.Uint64())
	}
	g.mt.SeedBySlice(key[:])
	// Per-stream tempering constants: odd multiplier and xor mask.
	g.t0 = uint32(sm.Uint64()) | 1
	g.t1 = uint32(sm.Uint64())
}

// Stream returns the stream id this generator was created for.
func (g *MTGP) Stream() int { return int(g.stream) }

// temper applies the per-stream output transformation.
func (g *MTGP) temper(y uint32) uint32 {
	y *= g.t0
	y ^= y >> 16
	y ^= g.t1
	return y
}

// Uint32 returns the next 32-bit output of this stream.
func (g *MTGP) Uint32() uint32 { return g.temper(g.mt.Uint32()) }

// Uint64 packs two 32-bit outputs, satisfying Source.
func (g *MTGP) Uint64() uint64 {
	hi := uint64(g.Uint32())
	lo := uint64(g.Uint32())
	return hi<<32 | lo
}

// Block fills dst with the next len(dst) 32-bit outputs. This mirrors the
// paper's dedicated PRNG kernel, which fills a buffer of random numbers
// for the whole round before the sampling and resampling kernels run
// (§VI-A: keeping MTGP in a separate kernel keeps the static resource
// usage of the other kernels small).
func (g *MTGP) Block(dst []uint32) {
	for i := range dst {
		dst[i] = g.Uint32()
	}
}

var _ BlockSource = (*MTGP)(nil)
