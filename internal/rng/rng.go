// Package rng provides the pseudo-random number generation substrate for
// the Esthera particle filter toolkit.
//
// Particle filters rely heavily on PRNGs (paper §VI-A): every sub-filter
// needs its own uncorrelated stream, and on many-core hardware the random
// numbers for a whole round are generated in one block by a dedicated
// kernel. This package therefore provides:
//
//   - MT19937, the classic Mersenne Twister, used by the sequential
//     reference filters (the paper's centralized C implementation).
//   - MTGP, an MTGP-style block generator: the Mersenne-Twister linear
//     recurrence with per-stream tempering parameters so that thousands of
//     work-groups can each own a decorrelated stream, plus a block-fill
//     API mirroring the paper's separate PRNG kernel.
//   - Philox4x32-10, a counter-based generator in the Random123 family;
//     the modern alternative for many-core architectures (no shared state,
//     arbitrary jump-ahead).
//   - xoshiro256++, a small fast generator used where statistical
//     requirements are modest (e.g. resampling coin flips).
//   - SplitMix64, used exclusively for seeding and stream derivation.
//
// Normal deviates are produced by Box-Muller (as in the paper, which added
// a Box-Muller transformation to its MTGP port) or by a Ziggurat sampler.
package rng

import (
	"math"
	"math/bits"
)

// Source is a deterministic stream of pseudo-random 64-bit words.
//
// Implementations must be deterministic given the same seed, and must not
// be shared across goroutines without external synchronization; the filter
// layer gives every sub-filter its own Source.
type Source interface {
	// Uint64 returns the next 64 bits of the stream.
	Uint64() uint64
	// Seed re-initializes the stream. A Source seeded with the same value
	// reproduces the same sequence.
	Seed(seed uint64)
}

// BlockSource is a Source that can also fill a whole block of 32-bit words
// at once, mirroring the dedicated PRNG kernel of the paper's GPU
// implementation (one block per sub-filter per round).
type BlockSource interface {
	Source
	// Block fills dst with the next len(dst) 32-bit words of the stream.
	Block(dst []uint32)
}

// New returns a Rand drawing from src. If src is nil it defaults to a
// Philox stream seeded with 1.
func New(src Source) *Rand {
	if src == nil {
		src = NewPhilox(1)
	}
	return &Rand{src: src}
}

// Rand layers distribution sampling on top of a raw Source. It is the
// single random-number façade used by the filters and models.
//
// Rand is not safe for concurrent use; create one per sub-filter.
type Rand struct {
	src Source

	// Box-Muller generates normals in pairs; the spare is cached here.
	haveSpare bool
	spare     float64

	// When true, NormFloat64 uses the Ziggurat sampler instead of
	// Box-Muller. Box-Muller is the default because it is what the paper
	// used on top of MTGP.
	useZiggurat bool

	// Reusable scratch for the block-draw API (Normals/Uniforms); not
	// part of the serialized state.
	normScratch []float64
	unifScratch []float64
}

// Source returns the underlying raw stream.
func (r *Rand) Source() Source { return r.src }

// UseZiggurat selects the Ziggurat normal sampler (true) or Box-Muller
// (false, the default).
func (r *Rand) UseZiggurat(on bool) {
	r.useZiggurat = on
	r.haveSpare = false
}

// Seed re-seeds the underlying source and clears cached state.
func (r *Rand) Seed(seed uint64) {
	r.src.Seed(seed)
	r.haveSpare = false
}

// Uint64 returns a uniformly distributed 64-bit word.
func (r *Rand) Uint64() uint64 { return r.src.Uint64() }

// Uint32 returns a uniformly distributed 32-bit word.
func (r *Rand) Uint32() uint32 { return uint32(r.src.Uint64() >> 32) }

// Float64 returns a uniform float64 in [0,1) with 53 random bits.
func (r *Rand) Float64() float64 {
	return float64(r.src.Uint64()>>11) * (1.0 / (1 << 53))
}

// OpenFloat64 returns a uniform float64 in the open interval (0,1),
// suitable as a Box-Muller or inverse-CDF input (never 0, never 1).
func (r *Rand) OpenFloat64() float64 {
	return (float64(r.src.Uint64()>>11) + 0.5) * (1.0 / (1 << 53))
}

// Intn returns a uniform int in [0,n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire-style bounded draw: the high half of v*n is uniform enough
	// for n ≪ 2^64 (the bias is < n/2^64, negligible at filter scales).
	v := r.src.Uint64()
	hi, _ := bits.Mul64(v, uint64(n))
	return int(hi)
}

// NormFloat64 returns a standard normal deviate (mean 0, stddev 1).
func (r *Rand) NormFloat64() float64 {
	if r.useZiggurat {
		return r.ziggurat()
	}
	if r.haveSpare {
		r.haveSpare = false
		return r.spare
	}
	z0, z1 := BoxMuller(r.OpenFloat64(), r.OpenFloat64())
	r.spare, r.haveSpare = z1, true
	return z0
}

// Normal returns a normal deviate with the given mean and standard
// deviation.
func (r *Rand) Normal(mean, stddev float64) float64 {
	return mean + stddev*r.NormFloat64()
}

// ExpFloat64 returns an exponentially distributed deviate with rate 1.
func (r *Rand) ExpFloat64() float64 {
	return -math.Log(r.OpenFloat64())
}

// Perm returns a uniformly random permutation of [0,n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}
