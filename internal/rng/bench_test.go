package rng

import "testing"

// Generator throughput benchmarks, mirroring the paper's §VII-C PRNG
// discussion (MTGP is tuned for GPUs; SFMT-class generators win on CPUs;
// counter-based generators avoid the state problem entirely).

func benchSource(b *testing.B, src Source) {
	b.Helper()
	b.SetBytes(8)
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= src.Uint64()
	}
	benchSink = sink
}

var benchSink uint64

func BenchmarkMT19937(b *testing.B)  { benchSource(b, NewMT19937(1)) }
func BenchmarkMTGP(b *testing.B)     { benchSource(b, NewMTGP(1, 0)) }
func BenchmarkPhilox(b *testing.B)   { benchSource(b, NewPhilox(1)) }
func BenchmarkXoshiro(b *testing.B)  { benchSource(b, NewXoshiro(1)) }
func BenchmarkSplitMix(b *testing.B) { benchSource(b, NewSplitMix64(1)) }

func BenchmarkMTGPBlock(b *testing.B) {
	g := NewMTGP(1, 0)
	buf := make([]uint32, 4096)
	b.SetBytes(4 * 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Block(buf)
	}
}

func BenchmarkPhiloxBlock(b *testing.B) {
	g := NewPhilox(1)
	buf := make([]uint32, 4096)
	b.SetBytes(4 * 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Block(buf)
	}
}

func BenchmarkBoxMullerNormals(b *testing.B) {
	r := New(NewPhilox(1))
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.NormFloat64()
	}
	benchSinkF = sink
}

func BenchmarkZigguratNormals(b *testing.B) {
	r := New(NewPhilox(1))
	r.UseZiggurat(true)
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.NormFloat64()
	}
	benchSinkF = sink
}

var benchSinkF float64
