package rng

// Xoshiro256PP implements xoshiro256++ 1.0 (Blackman & Vigna 2019): a
// small, very fast all-purpose generator with period 2^256-1. The filters
// use it where raw speed matters more than equidistribution depth — e.g.
// the per-sub-filter resampling coin flips — and the tests use it as an
// independent generator to cross-check distribution-level properties of
// the other sources.
type Xoshiro256PP struct {
	s [4]uint64
}

// NewXoshiro returns a xoshiro256++ stream seeded from seed via SplitMix64
// (the seeding procedure recommended by the authors).
func NewXoshiro(seed uint64) *Xoshiro256PP {
	x := &Xoshiro256PP{}
	x.Seed(seed)
	return x
}

// Seed fills the 256-bit state from seed using SplitMix64, retrying in the
// (astronomically unlikely) case of an all-zero state.
func (x *Xoshiro256PP) Seed(seed uint64) {
	sm := NewSplitMix64(seed)
	for {
		for i := range x.s {
			x.s[i] = sm.Uint64()
		}
		if x.s[0]|x.s[1]|x.s[2]|x.s[3] != 0 {
			return
		}
	}
}

func rotl64(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next output of the sequence.
func (x *Xoshiro256PP) Uint64() uint64 {
	result := rotl64(x.s[0]+x.s[3], 23) + x.s[0]
	t := x.s[1] << 17
	x.s[2] ^= x.s[0]
	x.s[3] ^= x.s[1]
	x.s[1] ^= x.s[2]
	x.s[0] ^= x.s[3]
	x.s[2] ^= t
	x.s[3] = rotl64(x.s[3], 45)
	return result
}

// Jump advances the stream by 2^128 steps, equivalent to 2^128 calls to
// Uint64. It can be used to create up to 2^128 non-overlapping
// subsequences for parallel sub-filters.
func (x *Xoshiro256PP) Jump() {
	jump := [4]uint64{0x180EC6D33CFD0ABA, 0xD5A61266F0C9392C, 0xA9582618E03FC9AA, 0x39ABDC4529B1661C}
	var s [4]uint64
	for _, j := range jump {
		for b := 0; b < 64; b++ {
			if j&(1<<uint(b)) != 0 {
				s[0] ^= x.s[0]
				s[1] ^= x.s[1]
				s[2] ^= x.s[2]
				s[3] ^= x.s[3]
			}
			x.Uint64()
		}
	}
	x.s = s
}

var _ Source = (*Xoshiro256PP)(nil)
