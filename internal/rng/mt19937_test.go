package rng

import "testing"

// TestMT19937KnownAnswers checks the first outputs against the reference
// implementation's sequence for the default seed 5489.
func TestMT19937KnownAnswers(t *testing.T) {
	want := []uint32{3499211612, 581869302, 3890346734, 3586334585, 545404204}
	m := NewMT19937(5489)
	for i, w := range want {
		if got := m.Uint32(); got != w {
			t.Fatalf("output %d: got %d, want %d", i, got, w)
		}
	}
}

func TestMT19937SeedReproducibility(t *testing.T) {
	a := NewMT19937(12345)
	b := NewMT19937(12345)
	for i := 0; i < 2000; i++ {
		if av, bv := a.Uint32(), b.Uint32(); av != bv {
			t.Fatalf("sequences diverge at %d: %d vs %d", i, av, bv)
		}
	}
	// Re-seeding restarts the sequence.
	first := a.Uint32()
	a.Seed(12345)
	restart := make([]uint32, 2001)
	for i := range restart {
		restart[i] = a.Uint32()
	}
	if restart[2000] != first {
		t.Fatalf("re-seeded sequence does not reproduce: got %d want %d", restart[2000], first)
	}
}

func TestMT19937SeedBySlice(t *testing.T) {
	a := &MT19937{}
	a.SeedBySlice([]uint32{0x123, 0x234, 0x345, 0x456})
	b := &MT19937{}
	b.SeedBySlice([]uint32{0x123, 0x234, 0x345, 0x456})
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint32(), b.Uint32(); av != bv {
			t.Fatalf("slice-seeded sequences diverge at %d", i)
		}
	}
	c := &MT19937{}
	c.SeedBySlice([]uint32{0x123, 0x234, 0x345, 0x457}) // one bit different
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint32() == c.Uint32() {
			same++
		}
	}
	if same > 3 {
		t.Fatalf("different keys produced %d/1000 identical outputs", same)
	}
}

func TestMT19937Uint64Packing(t *testing.T) {
	a := NewMT19937(7)
	b := NewMT19937(7)
	for i := 0; i < 100; i++ {
		hi := uint64(b.Uint32())
		lo := uint64(b.Uint32())
		if got, want := a.Uint64(), hi<<32|lo; got != want {
			t.Fatalf("Uint64 packing mismatch at %d: %x vs %x", i, got, want)
		}
	}
}

func TestMT19937Uniformity(t *testing.T) {
	checkUniformBits(t, NewMT19937(42), 200000)
}
