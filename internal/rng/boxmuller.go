package rng

import "math"

// BoxMuller maps two independent uniforms u1, u2 in (0,1) to two
// independent standard-normal deviates. This is the transformation the
// paper added to its MTGP port (§VI-A) so that the PRNG kernel emits
// normally distributed process-noise samples directly.
func BoxMuller(u1, u2 float64) (z0, z1 float64) {
	r := math.Sqrt(-2 * math.Log(u1))
	theta := 2 * math.Pi * u2
	s, c := math.Sincos(theta)
	return r * c, r * s
}

// BoxMullerPolar is the Marsaglia polar variant: it avoids the sin/cos at
// the cost of rejection (~21.5% of candidate pairs are discarded). u and v
// must be uniforms in (0,1); ok reports whether the pair was accepted.
func BoxMullerPolar(u, v float64) (z0, z1 float64, ok bool) {
	x := 2*u - 1
	y := 2*v - 1
	s := x*x + y*y
	if s >= 1 || s == 0 {
		return 0, 0, false
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	return x * f, y * f, true
}

// NormalsFromBits converts a block of raw 32-bit PRNG output into standard
// normal deviates via Box-Muller, consuming two words per pair. It fills
// dst completely and returns the number of 32-bit words consumed
// (always 2*ceil(len(dst)/2)). This is the exact shape of the paper's GPU
// pipeline: the PRNG kernel fills a uint32 buffer, and downstream kernels
// read normals out of it.
func NormalsFromBits(dst []float64, bits []uint32) int {
	const inv = 1.0 / (1 << 32)
	used := 0
	for i := 0; i < len(dst); i += 2 {
		// Map to open (0,1): offset by half an ulp of the 32-bit grid.
		u1 := (float64(bits[used]) + 0.5) * inv
		u2 := (float64(bits[used+1]) + 0.5) * inv
		used += 2
		z0, z1 := BoxMuller(u1, u2)
		dst[i] = z0
		if i+1 < len(dst) {
			dst[i+1] = z1
		}
	}
	return used
}

// UniformsFromBits converts raw 32-bit PRNG output into uniforms in [0,1),
// one word per output, filling dst and returning len(dst).
func UniformsFromBits(dst []float64, bits []uint32) int {
	const inv = 1.0 / (1 << 32)
	for i := range dst {
		dst[i] = float64(bits[i]) * inv
	}
	return len(dst)
}
