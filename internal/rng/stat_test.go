package rng

import (
	"math"
	"testing"
)

// u32source adapts any Source to draw single 32-bit words for the
// chi-square helpers.
type u32source interface{ Uint64() uint64 }

// checkUniformBits runs a 256-bin chi-square test on the top byte of n
// 64-bit draws and fails if the statistic is implausible (outside roughly
// ±6 sigma for 255 degrees of freedom). It is a smoke test for gross
// defects, not a PRNG certification.
func checkUniformBits(t *testing.T, src u32source, n int) {
	t.Helper()
	var bins [256]int
	for i := 0; i < n; i++ {
		bins[src.Uint64()>>56]++
	}
	expected := float64(n) / 256
	chi2 := 0.0
	for _, c := range bins {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// df = 255 → mean 255, sigma = sqrt(2*255) ≈ 22.6.
	if chi2 < 255-6*22.6 || chi2 > 255+6*22.6 {
		t.Fatalf("chi-square %0.1f implausible for uniform top byte (df=255)", chi2)
	}
}

// checkMoments verifies sample mean/variance/skew/kurtosis of a standard
// normal sampler within loose bounds.
func checkMoments(t *testing.T, sample func() float64, n int) {
	t.Helper()
	var m1, m2, m3, m4 float64
	for i := 0; i < n; i++ {
		x := sample()
		m1 += x
		m2 += x * x
		m3 += x * x * x
		m4 += x * x * x * x
	}
	fn := float64(n)
	mean := m1 / fn
	variance := m2/fn - mean*mean
	skew := m3 / fn
	kurt := m4 / fn
	se := 1 / math.Sqrt(fn)
	if math.Abs(mean) > 6*se {
		t.Errorf("mean %0.4f too far from 0 (se %0.4f)", mean, se)
	}
	if math.Abs(variance-1) > 10*se {
		t.Errorf("variance %0.4f too far from 1", variance)
	}
	if math.Abs(skew) > 20*se {
		t.Errorf("skewness proxy %0.4f too far from 0", skew)
	}
	if math.Abs(kurt-3) > 40*se {
		t.Errorf("kurtosis %0.4f too far from 3", kurt)
	}
}

func TestBoxMullerMoments(t *testing.T) {
	r := New(NewPhilox(99))
	checkMoments(t, r.NormFloat64, 400000)
}

func TestZigguratMoments(t *testing.T) {
	r := New(NewPhilox(99))
	r.UseZiggurat(true)
	checkMoments(t, r.NormFloat64, 400000)
}

// TestZigguratTailMass checks that the sampler produces values beyond the
// ziggurat edge R with approximately the right frequency, exercising the
// tail algorithm.
func TestZigguratTailMass(t *testing.T) {
	r := New(NewXoshiro(123))
	r.UseZiggurat(true)
	n := 2_000_000
	tail := 0
	for i := 0; i < n; i++ {
		if math.Abs(r.NormFloat64()) > zigR {
			tail++
		}
	}
	// P(|Z| > 3.4426...) ≈ 5.76e-4.
	want := 2 * 0.5 * math.Erfc(zigR/math.Sqrt2) * float64(n)
	got := float64(tail)
	if got < want*0.7 || got > want*1.4 {
		t.Fatalf("tail mass %v, want ≈ %v", got, want)
	}
}

// TestZigguratTables sanity-checks the construction: edges strictly
// decreasing, densities strictly increasing, layer areas ≈ V.
func TestZigguratTables(t *testing.T) {
	for i := 1; i < zigLayers; i++ {
		if !(zigX[i+1] < zigX[i]) {
			t.Fatalf("edges not strictly decreasing at %d: %v >= %v", i, zigX[i+1], zigX[i])
		}
		if !(zigF[i+1] > zigF[i]) {
			t.Fatalf("densities not strictly increasing at %d", i)
		}
	}
	if zigX[zigLayers] != 0 || math.Abs(zigF[zigLayers]-1) > 1e-9 {
		t.Fatalf("top layer must end at (0, 1); got (%v, %v)", zigX[zigLayers], zigF[zigLayers])
	}
	for i := 1; i < zigLayers; i++ {
		area := zigX[i] * (zigF[i+1] - zigF[i])
		if math.Abs(area-zigV) > 1e-6 {
			t.Fatalf("layer %d area %v, want %v", i, area, zigV)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(NewXoshiro(5))
	for i := 0; i < 100000; i++ {
		if v := r.Float64(); v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
		if v := r.OpenFloat64(); v <= 0 || v >= 1 {
			t.Fatalf("OpenFloat64 out of (0,1): %v", v)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(NewPhilox(77))
	for _, n := range []int{1, 2, 3, 7, 64, 1000, 1 << 20} {
		for i := 0; i < 1000; i++ {
			if v := r.Intn(n); v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(NewPhilox(1)).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := New(NewPhilox(3))
	for _, n := range []int{0, 1, 2, 10, 257} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid element %d", n, v)
			}
			seen[v] = true
		}
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(NewPhilox(11))
	sum := 0.0
	n := 200000
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	mean := sum / float64(n)
	if math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean %v, want ≈ 1", mean)
	}
}

func TestBoxMullerPolarAcceptance(t *testing.T) {
	r := New(NewXoshiro(9))
	accepted, total := 0, 100000
	var sum, sum2 float64
	cnt := 0
	for i := 0; i < total; i++ {
		z0, z1, ok := BoxMullerPolar(r.Float64(), r.Float64())
		if ok {
			accepted++
			sum += z0 + z1
			sum2 += z0*z0 + z1*z1
			cnt += 2
		}
	}
	rate := float64(accepted) / float64(total)
	if rate < 0.76 || rate > 0.81 { // π/4 ≈ 0.785
		t.Fatalf("polar acceptance rate %v, want ≈ 0.785", rate)
	}
	mean := sum / float64(cnt)
	variance := sum2/float64(cnt) - mean*mean
	if math.Abs(mean) > 0.02 || math.Abs(variance-1) > 0.03 {
		t.Fatalf("polar moments off: mean %v var %v", mean, variance)
	}
}

func TestNormalsFromBits(t *testing.T) {
	src := NewPhilox(1234)
	bits := make([]uint32, 100001) // odd length to exercise the tail
	src.Block(bits)
	dst := make([]float64, 99999) // odd output length
	used := NormalsFromBits(dst, bits)
	if used != 100000 {
		t.Fatalf("consumed %d words, want 100000", used)
	}
	var sum, sum2 float64
	for _, v := range dst {
		sum += v
		sum2 += v * v
	}
	n := float64(len(dst))
	mean, variance := sum/n, sum2/n-(sum/n)*(sum/n)
	if math.Abs(mean) > 0.02 || math.Abs(variance-1) > 0.03 {
		t.Fatalf("NormalsFromBits moments off: mean %v var %v", mean, variance)
	}
}

func TestUniformsFromBits(t *testing.T) {
	bits := []uint32{0, 1 << 31, 0xFFFFFFFF}
	dst := make([]float64, 3)
	UniformsFromBits(dst, bits)
	if dst[0] != 0 {
		t.Fatalf("dst[0] = %v, want 0", dst[0])
	}
	if math.Abs(dst[1]-0.5) > 1e-9 {
		t.Fatalf("dst[1] = %v, want 0.5", dst[1])
	}
	if dst[2] >= 1 || dst[2] < 0.9999999 {
		t.Fatalf("dst[2] = %v, want just below 1", dst[2])
	}
}
