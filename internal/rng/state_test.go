package rng

import (
	"encoding/json"
	"testing"
)

// drain pulls n words from a source.
func drain(s Source, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = s.Uint64()
	}
	return out
}

func TestStateRoundtrip(t *testing.T) {
	cases := []struct {
		name string
		make func() interface {
			Source
			Stateful
		}
	}{
		{"philox", func() interface {
			Source
			Stateful
		} {
			return NewPhiloxStream(42, 3)
		}},
		{"mtgp", func() interface {
			Source
			Stateful
		} {
			return NewMTGP(42, 3)
		}},
		{"mt19937", func() interface {
			Source
			Stateful
		} {
			return NewMT19937(42)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src := tc.make()
			drain(src, 137) // advance to an arbitrary position
			st := src.SaveState()

			// JSON roundtrip, as the serve checkpoint path does.
			blob, err := json.Marshal(st)
			if err != nil {
				t.Fatal(err)
			}
			var back State
			if err := json.Unmarshal(blob, &back); err != nil {
				t.Fatal(err)
			}

			want := drain(src, 64)
			fresh := tc.make()
			if err := fresh.RestoreState(back); err != nil {
				t.Fatal(err)
			}
			got := drain(fresh, 64)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("word %d: restored stream %#x != original %#x", i, got[i], want[i])
				}
			}
		})
	}
}

func TestStateRoundtripBufferAndRand(t *testing.T) {
	mk := func() *Rand {
		return New(NewBuffer(64, NewPhiloxStream(9, 5)))
	}
	r := mk()
	buf := r.Source().(*Buffer)
	buf.Refill()
	// Consume an odd mix: buffered words, a normal (caching a Box-Muller
	// spare), more uniforms past the block end.
	for i := 0; i < 13; i++ {
		r.Float64()
	}
	r.NormFloat64()
	st := r.SaveState()

	want := make([]float64, 80)
	for i := range want {
		want[i] = r.NormFloat64()
	}

	fresh := mk()
	if err := fresh.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got := fresh.NormFloat64(); got != want[i] {
			t.Fatalf("draw %d: restored %v != original %v", i, got, want[i])
		}
	}
}

func TestStateKindMismatch(t *testing.T) {
	p := NewPhilox(1)
	m := NewMT19937(1)
	if err := p.RestoreState(m.SaveState()); err == nil {
		t.Fatal("philox accepted mt19937 state")
	}
	var r Rand
	r.src = p
	if err := r.RestoreState(p.SaveState()); err == nil {
		t.Fatal("rand accepted philox state")
	}
	b := NewBuffer(8, NewPhilox(1))
	big := NewBuffer(16, NewPhilox(1))
	if err := b.RestoreState(big.SaveState()); err == nil {
		t.Fatal("buffer accepted state with mismatched capacity")
	}
}
