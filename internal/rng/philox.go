package rng

// Philox4x32 implements the Philox4x32-10 counter-based generator of
// Salmon et al. (SC'11, the Random123 family). Counter-based generators
// are the modern answer to the problem the paper solves with MTGP: every
// work-item can compute its own random numbers from (key, counter) with no
// shared state, no warm-up, and O(1) jump-ahead, which is ideal for
// many-core execution. The toolkit offers Philox as the default per-
// sub-filter stream and MTGP for fidelity with the paper.
type Philox4x32 struct {
	key [2]uint32
	ctr [4]uint32
	buf [4]uint32
	n   int // unread words remaining in buf
}

const (
	philoxM0 = 0xD2511F53
	philoxM1 = 0xCD9E8D57
	philoxW0 = 0x9E3779B9 // golden ratio
	philoxW1 = 0xBB67AE85 // sqrt(3)-1
)

// NewPhilox returns a Philox4x32-10 stream with the key derived from seed
// and the counter at zero.
func NewPhilox(seed uint64) *Philox4x32 {
	p := &Philox4x32{}
	p.Seed(seed)
	return p
}

// NewPhiloxStream returns a stream for (master, stream id): the id is
// folded into the key so that streams are independent by construction.
func NewPhiloxStream(master uint64, stream int) *Philox4x32 {
	p := &Philox4x32{}
	p.Seed(StreamSeed(master, stream))
	return p
}

// Seed sets the 64-bit key and resets the counter.
func (p *Philox4x32) Seed(seed uint64) {
	p.key[0] = uint32(seed)
	p.key[1] = uint32(seed >> 32)
	p.ctr = [4]uint32{}
	p.n = 0
}

// SetCounter positions the stream at an absolute 128-bit counter value,
// given as four 32-bit words (little-endian significance). This is the
// jump-ahead facility: disjoint counter ranges never overlap.
func (p *Philox4x32) SetCounter(c0, c1, c2, c3 uint32) {
	p.ctr = [4]uint32{c0, c1, c2, c3}
	p.n = 0
}

// Round4x32 applies the full 10-round Philox4x32 bijection to ctr under
// key and returns the four output words. It is exposed (rather than kept
// private) so the device kernels can generate numbers positionally.
//
//esthera:hotpath noalloc bce
func Round4x32(key [2]uint32, ctr [4]uint32) [4]uint32 {
	k0, k1 := key[0], key[1]
	// The counter words live in scalars so the ten rounds stay in
	// registers instead of round-tripping through an array temporary.
	c0, c1, c2, c3 := ctr[0], ctr[1], ctr[2], ctr[3]
	for round := 0; round < 10; round++ {
		hi0, lo0 := mul32(philoxM0, c0)
		hi1, lo1 := mul32(philoxM1, c2)
		c0, c1, c2, c3 = hi1^c1^k0, lo1, hi0^c3^k1, lo0
		k0 += philoxW0
		k1 += philoxW1
	}
	return [4]uint32{c0, c1, c2, c3}
}

// refill produces the next 4-word block and advances the counter.
//
//esthera:hotpath noalloc bce
func (p *Philox4x32) refill() {
	p.buf = Round4x32(p.key, p.ctr)
	// 128-bit increment.
	for i := 0; i < 4; i++ {
		p.ctr[i]++
		if p.ctr[i] != 0 {
			break
		}
	}
	p.n = 4
}

// Uint32 returns the next 32-bit output.
//
//esthera:hotpath noalloc bce
func (p *Philox4x32) Uint32() uint32 {
	if p.n == 0 {
		p.refill()
	}
	v := p.buf[4-p.n]
	p.n--
	return v
}

// Uint64 packs two 32-bit outputs, satisfying Source.
//
//esthera:hotpath noalloc bce
func (p *Philox4x32) Uint64() uint64 {
	hi := uint64(p.Uint32())
	lo := uint64(p.Uint32())
	return hi<<32 | lo
}

// Block fills dst with consecutive outputs, satisfying BlockSource. The
// stream is identical to len(dst) Uint32 calls: buffered leftovers are
// drained first, whole 4-word blocks are then generated straight into
// dst (skipping the internal buffer and its per-word bookkeeping), and
// any tail goes through Uint32 so the leftover state matches.
//
//esthera:hotpath noalloc bce
func (p *Philox4x32) Block(dst []uint32) {
	i := 0
	for p.n > 0 && i < len(dst) {
		dst[i] = p.buf[4-p.n]
		p.n--
		i++
	}
	for ; i+4 <= len(dst); i += 4 {
		b := Round4x32(p.key, p.ctr)
		for w := 0; w < 4; w++ {
			p.ctr[w]++
			if p.ctr[w] != 0 {
				break
			}
		}
		dst[i], dst[i+1], dst[i+2], dst[i+3] = b[0], b[1], b[2], b[3]
	}
	for ; i < len(dst); i++ {
		dst[i] = p.Uint32()
	}
}

// mul32 returns the 64-bit product of a and b split as (hi, lo) 32-bit
// halves.
func mul32(a, b uint32) (hi, lo uint32) {
	prod := uint64(a) * uint64(b)
	return uint32(prod >> 32), uint32(prod)
}

var _ BlockSource = (*Philox4x32)(nil)
