package rng

import "testing"

func TestBufferServesBlockThenFallsBack(t *testing.T) {
	// A buffer of 6 words serves 3 Uint64s from the block, then falls
	// back to the live stream for the rest — and the combined sequence
	// must equal the plain stream (Refill consumes the same words the
	// direct draws would).
	direct := NewPhilox(42)
	want := make([]uint64, 6)
	for i := range want {
		want[i] = direct.Uint64()
	}

	buf := NewBuffer(6, NewPhilox(42))
	if buf.Remaining() != 0 {
		t.Fatalf("fresh buffer remaining = %d, want 0 (starts exhausted)", buf.Remaining())
	}
	if n := buf.Refill(); n != 6 {
		t.Fatalf("Refill generated %d words, want 6", n)
	}
	if buf.Remaining() != 6 {
		t.Fatalf("remaining after refill = %d", buf.Remaining())
	}
	for i := 0; i < 6; i++ {
		if got := buf.Uint64(); got != want[i] {
			t.Fatalf("draw %d: %x, want %x", i, got, want[i])
		}
		wantRem := 6 - 2*(i+1)
		if wantRem < 0 {
			wantRem = 0
		}
		if i < 3 && buf.Remaining() != wantRem {
			t.Fatalf("remaining after draw %d = %d, want %d", i, buf.Remaining(), wantRem)
		}
	}
}

func TestBufferFallbackBeforeRefill(t *testing.T) {
	// Without Refill, every draw hits the fallback stream directly.
	buf := NewBuffer(8, NewPhilox(7))
	direct := NewPhilox(7)
	for i := 0; i < 4; i++ {
		if buf.Uint64() != direct.Uint64() {
			t.Fatalf("pre-refill draw %d diverged from fallback", i)
		}
	}
}

func TestBufferOddRemainderUsesFallback(t *testing.T) {
	// A 5-word block serves two Uint64s; the fifth word is stranded and
	// the third draw must come from the live stream.
	buf := NewBuffer(5, NewPhilox(9))
	buf.Refill()
	buf.Uint64()
	buf.Uint64()
	if buf.Remaining() != 1 {
		t.Fatalf("remaining = %d, want 1", buf.Remaining())
	}
	direct := NewPhilox(9)
	var skip [5]uint32
	direct.Block(skip[:]) // the refilled block
	want := direct.Uint64()
	if got := buf.Uint64(); got != want {
		t.Fatalf("stranded-word draw = %x, want fallback %x", got, want)
	}
}

func TestBufferSeedResets(t *testing.T) {
	buf := NewBuffer(4, NewPhilox(1))
	buf.Refill()
	buf.Uint64()
	buf.Seed(99)
	if buf.Remaining() != 0 {
		t.Fatal("Seed must discard the buffered block")
	}
	if buf.Uint64() != NewPhilox(99).Uint64() {
		t.Fatal("Seed did not reset the fallback stream")
	}
}

func TestBufferDeterministicRounds(t *testing.T) {
	// Two buffers with identical seeds and refill schedules produce
	// identical streams — the property the rand kernel relies on.
	mk := func() *Buffer { return NewBuffer(16, NewPhiloxStream(5, 3)) }
	a, b := mk(), mk()
	for round := 0; round < 5; round++ {
		a.Refill()
		b.Refill()
		for i := 0; i < 10; i++ { // 10 > 8: exercises overflow too
			if a.Uint64() != b.Uint64() {
				t.Fatalf("round %d draw %d diverged", round, i)
			}
		}
	}
}

func TestMTGPStreamAccessor(t *testing.T) {
	g := NewMTGP(1, 42)
	if g.Stream() != 42 {
		t.Fatalf("Stream() = %d, want 42", g.Stream())
	}
}

func TestRandAuxiliaryMethods(t *testing.T) {
	r := New(NewPhilox(3))
	if v := r.Uint32(); v == r.Uint32() {
		// Two consecutive 32-bit draws colliding is ~2^-32; treat as failure.
		t.Fatal("consecutive Uint32 draws identical")
	}
	// Normal scales and shifts.
	sum := 0.0
	const n = 20000
	for i := 0; i < n; i++ {
		sum += r.Normal(5, 2)
	}
	if m := sum / n; m < 4.9 || m > 5.1 {
		t.Fatalf("Normal(5,2) mean %v", m)
	}
	// Shuffle permutes.
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make([]bool, 8)
	for _, v := range xs {
		if v < 0 || v > 7 || seen[v] {
			t.Fatalf("Shuffle broke permutation: %v", xs)
		}
		seen[v] = true
	}
	// SplitMix64 Seed.
	sm := NewSplitMix64(1)
	sm.Uint64()
	sm.Seed(1)
	a := sm.Uint64()
	if a != NewSplitMix64(1).Uint64() {
		t.Fatal("SplitMix64.Seed did not reset")
	}
}
