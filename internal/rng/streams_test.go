package rng

import (
	"testing"
	"testing/quick"
)

func TestXoshiroReproducibility(t *testing.T) {
	a, b := NewXoshiro(99), NewXoshiro(99)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("xoshiro sequences diverge at %d", i)
		}
	}
}

func TestXoshiroUniformity(t *testing.T) {
	checkUniformBits(t, NewXoshiro(31337), 200000)
}

func TestXoshiroJumpDisjoint(t *testing.T) {
	// After a jump the stream must not overlap the original prefix.
	a := NewXoshiro(5)
	prefix := make(map[uint64]bool, 4096)
	for i := 0; i < 4096; i++ {
		prefix[a.Uint64()] = true
	}
	b := NewXoshiro(5)
	b.Jump()
	for i := 0; i < 4096; i++ {
		if prefix[b.Uint64()] {
			t.Fatalf("jumped stream revisits prefix value at %d", i)
		}
	}
}

func TestSplitMixReproducibility(t *testing.T) {
	a, b := NewSplitMix64(0), NewSplitMix64(0)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("splitmix not deterministic")
		}
	}
}

func TestMix64Bijective(t *testing.T) {
	// Spot check injectivity over a dense window (a true bijection can't
	// collide anywhere).
	seen := make(map[uint64]uint64, 1<<16)
	for i := uint64(0); i < 1<<16; i++ {
		v := Mix64(i)
		if p, dup := seen[v]; dup {
			t.Fatalf("Mix64 collision: %d and %d -> %x", p, i, v)
		}
		seen[v] = i
	}
}

func TestStreamSeedDistinct(t *testing.T) {
	seen := make(map[uint64]int, 1<<14)
	for id := 0; id < 1<<14; id++ {
		s := StreamSeed(7, id)
		if p, dup := seen[s]; dup {
			t.Fatalf("StreamSeed collision between ids %d and %d", p, id)
		}
		seen[s] = id
	}
}

func TestMTGPStreamsDecorrelated(t *testing.T) {
	a := NewMTGP(1, 0)
	b := NewMTGP(1, 1)
	match := 0
	const n = 10000
	for i := 0; i < n; i++ {
		x := a.Uint64() ^ b.Uint64()
		for x != 0 {
			match += int(x & 1)
			x >>= 1
		}
	}
	frac := float64(match) / float64(n*64)
	if frac < 0.49 || frac > 0.51 {
		t.Fatalf("MTGP inter-stream bit-difference fraction %v, want ≈ 0.5", frac)
	}
}

func TestMTGPBlockMatchesScalar(t *testing.T) {
	a := NewMTGP(9, 3)
	b := NewMTGP(9, 3)
	blk := make([]uint32, 777)
	a.Block(blk)
	for i, v := range blk {
		if w := b.Uint32(); v != w {
			t.Fatalf("MTGP block/scalar mismatch at %d", i)
		}
	}
}

func TestMTGPUniformity(t *testing.T) {
	checkUniformBits(t, NewMTGP(4242, 17), 200000)
}

func TestMTGPSeedChangesStream(t *testing.T) {
	a := NewMTGP(1, 5)
	b := NewMTGP(2, 5)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 3 {
		t.Fatalf("different master seeds produced %d/1000 identical outputs", same)
	}
}

// TestQuickStreamSeedNoAdjacentCollision: property-based check that
// neighboring (master, id) pairs never collide.
func TestQuickStreamSeedNoAdjacentCollision(t *testing.T) {
	f := func(master uint64, id uint16) bool {
		a := StreamSeed(master, int(id))
		b := StreamSeed(master, int(id)+1)
		c := StreamSeed(master+1, int(id))
		return a != b && a != c
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestNewDefaults(t *testing.T) {
	r := New(nil)
	if r.Source() == nil {
		t.Fatal("New(nil) must install a default source")
	}
	r.Seed(8)
	v1 := r.Uint64()
	r.Seed(8)
	if v2 := r.Uint64(); v1 != v2 {
		t.Fatal("Rand.Seed must reset the stream")
	}
}

func TestRandSeedClearsSpare(t *testing.T) {
	r := New(NewPhilox(1))
	_ = r.NormFloat64() // caches a spare
	r.Seed(1)
	a := r.NormFloat64()
	r2 := New(NewPhilox(1))
	if b := r2.NormFloat64(); a != b {
		t.Fatalf("spare not cleared by Seed: %v vs %v", a, b)
	}
}
