package rng

// Block-draw API: fill whole spans of deviates per call instead of one
// façade call per draw. These are the RNG half of the vectorized kernel
// path (model.VecModel consumes them): the draw ORDER is bit-for-bit the
// order the scalar façade produces — FillNormals(dst) is exactly
// len(dst) sequential NormFloat64 calls, including the Box-Muller spare
// handoff across calls — so switching a kernel between per-lane and
// per-span sampling cannot move a single stream position.

const inv53 = 1.0 / (1 << 53)

// FillNormals fills dst with standard-normal deviates, bit-identical to
// len(dst) sequential NormFloat64 calls (same draws, same spare cache
// state afterward). When the source is a block Buffer, the raw words are
// taken from the block in bulk, skipping per-draw façade dispatch.
//
//esthera:hotpath noalloc bce
func (r *Rand) FillNormals(dst []float64) {
	if r.useZiggurat {
		for i := range dst {
			dst[i] = r.ziggurat()
		}
		return
	}
	i := 0
	if r.haveSpare && i < len(dst) {
		dst[i] = r.spare
		r.haveSpare = false
		i++
	}
	if b, ok := r.src.(*Buffer); ok {
		i = fillNormalsBuffered(dst, i, b)
	}
	for ; i+2 <= len(dst); i += 2 {
		dst[i], dst[i+1] = BoxMuller(r.OpenFloat64(), r.OpenFloat64())
	}
	if i < len(dst) {
		z0, z1 := BoxMuller(r.OpenFloat64(), r.OpenFloat64())
		dst[i] = z0
		r.spare, r.haveSpare = z1, true
	}
}

// fillNormalsBuffered draws as many whole Box-Muller pairs as fit in the
// buffered block directly from its words (4 words per pair, identical
// packing and 53-bit open-interval mapping as OpenFloat64 over Uint64).
// It returns the next unfilled index; any remainder falls back to the
// scalar path.
//
//esthera:hotpath noalloc bce
func fillNormalsBuffered(dst []float64, i int, b *Buffer) int {
	n := 4 * ((len(dst) - i) / 2)
	if avail := len(b.bits) - b.pos; n > avail {
		n = avail &^ 3
	}
	w := b.take(n)
	for j := 0; j+4 <= len(w); j += 4 {
		u1 := (float64((uint64(w[j])<<32|uint64(w[j+1]))>>11) + 0.5) * inv53
		u2 := (float64((uint64(w[j+2])<<32|uint64(w[j+3]))>>11) + 0.5) * inv53
		dst[i], dst[i+1] = BoxMuller(u1, u2)
		i += 2
	}
	return i
}

// FillUniforms fills dst with uniforms in [0,1), bit-identical to
// len(dst) sequential Float64 calls.
//
//esthera:hotpath noalloc bce
func (r *Rand) FillUniforms(dst []float64) {
	i := 0
	if b, ok := r.src.(*Buffer); ok {
		n := 2 * len(dst)
		if avail := len(b.bits) - b.pos; n > avail {
			n = avail &^ 1
		}
		w := b.take(n)
		for j := 0; j+2 <= len(w); j += 2 {
			dst[i] = float64((uint64(w[j])<<32|uint64(w[j+1]))>>11) * inv53
			i++
		}
	}
	for ; i < len(dst); i++ {
		dst[i] = r.Float64()
	}
}

// Normals returns a reusable scratch slice of n standard-normal
// deviates. The slice is owned by the Rand and overwritten by the next
// Normals call; Rand is single-goroutine by contract, so per-sub-filter
// kernels can call this every round with zero steady-state allocation.
//
//esthera:hotpath noalloc bce
func (r *Rand) Normals(n int) []float64 {
	if cap(r.normScratch) < n {
		//esthera:allow noalloc amortized scratch growth; steady-state calls reuse the buffer
		r.normScratch = make([]float64, n)
	}
	s := r.normScratch[:n]
	r.FillNormals(s)
	return s
}

// Uniforms returns a reusable scratch slice of n uniforms in [0,1),
// with the same ownership rules as Normals.
//
//esthera:hotpath noalloc bce
func (r *Rand) Uniforms(n int) []float64 {
	if cap(r.unifScratch) < n {
		//esthera:allow noalloc amortized scratch growth; steady-state calls reuse the buffer
		r.unifScratch = make([]float64, n)
	}
	s := r.unifScratch[:n]
	r.FillUniforms(s)
	return s
}
