package rng

import (
	"fmt"
	"math"
)

// State is a serializable capture of a generator's complete position: the
// words a generator needs to resume exactly where it stopped, plus the
// states of any wrapped sources. It is plain data (JSON-marshalable,
// copyable with Clone) and is the unit the checkpoint/restore machinery
// of internal/serve persists per stream: a checkpointed filter restored
// from a State replays bit-identically to an uninterrupted run.
//
// Kind identifies the concrete generator ("philox", "mtgp", "mt19937",
// "buffer", "rand"); RestoreState rejects a mismatched Kind so a
// checkpoint cannot be silently restored into the wrong stream family.
type State struct {
	Kind  string   `json:"kind"`
	Words []uint32 `json:"words,omitempty"`
	Sub   []State  `json:"sub,omitempty"`
}

// Clone returns a deep copy of the state.
func (s State) Clone() State {
	out := State{Kind: s.Kind}
	if len(s.Words) > 0 {
		out.Words = append([]uint32(nil), s.Words...)
	}
	for _, sub := range s.Sub {
		out.Sub = append(out.Sub, sub.Clone())
	}
	return out
}

// Stateful is a Source whose exact stream position can be captured and
// restored. All toolkit generators used by the device pipeline satisfy
// it.
type Stateful interface {
	// SaveState captures the complete generator state.
	SaveState() State
	// RestoreState repositions the generator; it fails if st was saved
	// from a different generator kind or has the wrong shape.
	RestoreState(st State) error
}

func checkState(st State, kind string, words int) error {
	if st.Kind != kind {
		return fmt.Errorf("rng: cannot restore %q state into %s stream", st.Kind, kind)
	}
	if len(st.Words) != words {
		return fmt.Errorf("rng: %s state has %d words, want %d", kind, len(st.Words), words)
	}
	return nil
}

// SaveState implements Stateful: key, counter, output buffer and unread
// count (11 words).
func (p *Philox4x32) SaveState() State {
	w := make([]uint32, 0, 11)
	w = append(w, p.key[0], p.key[1])
	w = append(w, p.ctr[0], p.ctr[1], p.ctr[2], p.ctr[3])
	w = append(w, p.buf[0], p.buf[1], p.buf[2], p.buf[3])
	w = append(w, uint32(p.n))
	return State{Kind: "philox", Words: w}
}

// RestoreState implements Stateful.
func (p *Philox4x32) RestoreState(st State) error {
	if err := checkState(st, "philox", 11); err != nil {
		return err
	}
	if st.Words[10] > 4 {
		return fmt.Errorf("rng: philox state has %d unread words, max 4", st.Words[10])
	}
	p.key[0], p.key[1] = st.Words[0], st.Words[1]
	copy(p.ctr[:], st.Words[2:6])
	copy(p.buf[:], st.Words[6:10])
	p.n = int(st.Words[10])
	return nil
}

// SaveState implements Stateful: the full twister state plus index
// (625 words).
func (m *MT19937) SaveState() State {
	w := make([]uint32, mtN+1)
	copy(w, m.state[:])
	w[mtN] = uint32(m.index)
	return State{Kind: "mt19937", Words: w}
}

// RestoreState implements Stateful.
func (m *MT19937) RestoreState(st State) error {
	if err := checkState(st, "mt19937", mtN+1); err != nil {
		return err
	}
	if st.Words[mtN] > mtN {
		return fmt.Errorf("rng: mt19937 state index %d out of range", st.Words[mtN])
	}
	copy(m.state[:], st.Words[:mtN])
	m.index = int(st.Words[mtN])
	return nil
}

// SaveState implements Stateful: stream id, master seed and per-stream
// tempering constants, with the underlying twister as a sub-state.
func (g *MTGP) SaveState() State {
	w := []uint32{
		uint32(g.stream), uint32(g.stream >> 32),
		uint32(g.master), uint32(g.master >> 32),
		g.t0, g.t1,
	}
	return State{Kind: "mtgp", Words: w, Sub: []State{g.mt.SaveState()}}
}

// RestoreState implements Stateful.
func (g *MTGP) RestoreState(st State) error {
	if err := checkState(st, "mtgp", 6); err != nil {
		return err
	}
	if len(st.Sub) != 1 {
		return fmt.Errorf("rng: mtgp state has %d sub-states, want 1", len(st.Sub))
	}
	var mt MT19937
	if err := mt.RestoreState(st.Sub[0]); err != nil {
		return err
	}
	g.stream = uint64(st.Words[0]) | uint64(st.Words[1])<<32
	g.master = uint64(st.Words[2]) | uint64(st.Words[3])<<32
	g.t0, g.t1 = st.Words[4], st.Words[5]
	g.mt = mt
	return nil
}

// SaveState implements Stateful: the read position followed by the whole
// buffered block, with the fallback stream as a sub-state. The block must
// be captured verbatim — it was generated before the fallback's saved
// position, so it cannot be regenerated from the sub-state alone. Lazy
// materialization is forced to completion first, so the saved bytes (and
// the fallback's saved position) are exactly what eager generation would
// have produced.
func (b *Buffer) SaveState() State {
	b.materializeTo(len(b.bits))
	w := make([]uint32, 0, len(b.bits)+1)
	w = append(w, uint32(b.pos))
	w = append(w, b.bits...)
	st := State{Kind: "buffer", Words: w}
	if sf, ok := b.fallback.(Stateful); ok {
		st.Sub = []State{sf.SaveState()}
	}
	return st
}

// RestoreState implements Stateful. The buffer's capacity must match the
// saved block length.
func (b *Buffer) RestoreState(st State) error {
	if st.Kind != "buffer" {
		return fmt.Errorf("rng: cannot restore %q state into buffer", st.Kind)
	}
	if len(st.Words) != len(b.bits)+1 {
		return fmt.Errorf("rng: buffer state block is %d words, buffer capacity %d",
			len(st.Words)-1, len(b.bits))
	}
	pos := int(st.Words[0])
	if pos < 0 || pos > len(b.bits) {
		return fmt.Errorf("rng: buffer state position %d out of range [0,%d]", pos, len(b.bits))
	}
	if len(st.Sub) > 0 {
		sf, ok := b.fallback.(Stateful)
		if !ok {
			return fmt.Errorf("rng: buffer fallback %T cannot restore state", b.fallback)
		}
		if err := sf.RestoreState(st.Sub[0]); err != nil {
			return err
		}
	}
	copy(b.bits, st.Words[1:])
	b.pos = pos
	b.gen = len(b.bits) // the restored block is fully materialized
	return nil
}

// SaveState implements Stateful: the Box-Muller spare cache and sampler
// selection, with the wrapped source as a sub-state.
func (r *Rand) SaveState() State {
	w := make([]uint32, 4)
	if r.haveSpare {
		w[0] = 1
	}
	bits := math.Float64bits(r.spare)
	w[1] = uint32(bits)
	w[2] = uint32(bits >> 32)
	if r.useZiggurat {
		w[3] = 1
	}
	st := State{Kind: "rand", Words: w}
	if sf, ok := r.src.(Stateful); ok {
		st.Sub = []State{sf.SaveState()}
	}
	return st
}

// RestoreState implements Stateful.
func (r *Rand) RestoreState(st State) error {
	if err := checkState(st, "rand", 4); err != nil {
		return err
	}
	if len(st.Sub) > 0 {
		sf, ok := r.src.(Stateful)
		if !ok {
			return fmt.Errorf("rng: source %T cannot restore state", r.src)
		}
		if err := sf.RestoreState(st.Sub[0]); err != nil {
			return err
		}
	}
	r.haveSpare = st.Words[0] != 0
	r.spare = math.Float64frombits(uint64(st.Words[1]) | uint64(st.Words[2])<<32)
	r.useZiggurat = st.Words[3] != 0
	return nil
}

var (
	_ Stateful = (*Philox4x32)(nil)
	_ Stateful = (*MT19937)(nil)
	_ Stateful = (*MTGP)(nil)
	_ Stateful = (*Buffer)(nil)
	_ Stateful = (*Rand)(nil)
)
