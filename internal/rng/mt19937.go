package rng

// MT19937 is the classic 32-bit Mersenne Twister of Matsumoto & Nishimura
// (1998), the generator the paper identifies as the de-facto standard
// ("characterized by a large period, good test results and an inspiring
// name"). The sequential reference filters use it, matching the paper's
// centralized C implementation (which used SFMT, an SIMD-oriented variant
// of the same recurrence).
//
// Period 2^19937-1, 623-dimensional equidistribution at 32-bit accuracy.
type MT19937 struct {
	state [mtN]uint32
	index int
}

const (
	mtN         = 624
	mtM         = 397
	mtMatrixA   = 0x9908B0DF
	mtUpperMask = 0x80000000
	mtLowerMask = 0x7FFFFFFF
)

// NewMT19937 returns a Mersenne Twister seeded with seed.
func NewMT19937(seed uint64) *MT19937 {
	m := &MT19937{}
	m.Seed(seed)
	return m
}

// Seed initializes the state with the standard Knuth-style initializer
// (multiplier 1812433253). Only the low 32 bits of seed are used, matching
// the reference implementation.
func (m *MT19937) Seed(seed uint64) {
	m.state[0] = uint32(seed)
	for i := 1; i < mtN; i++ {
		m.state[i] = 1812433253*(m.state[i-1]^(m.state[i-1]>>30)) + uint32(i)
	}
	m.index = mtN
}

// SeedBySlice initializes the state from a key array using the reference
// init_by_array procedure, allowing more than 32 bits of seed entropy.
func (m *MT19937) SeedBySlice(key []uint32) {
	m.Seed(19650218)
	i, j := 1, 0
	k := len(key)
	if mtN > k {
		k = mtN
	}
	for ; k > 0; k-- {
		m.state[i] = (m.state[i] ^ ((m.state[i-1] ^ (m.state[i-1] >> 30)) * 1664525)) + key[j] + uint32(j)
		i++
		j++
		if i >= mtN {
			m.state[0] = m.state[mtN-1]
			i = 1
		}
		if j >= len(key) {
			j = 0
		}
	}
	for k = mtN - 1; k > 0; k-- {
		m.state[i] = (m.state[i] ^ ((m.state[i-1] ^ (m.state[i-1] >> 30)) * 1566083941)) - uint32(i)
		i++
		if i >= mtN {
			m.state[0] = m.state[mtN-1]
			i = 1
		}
	}
	m.state[0] = 0x80000000
	m.index = mtN
}

// Uint32 returns the next tempered 32-bit output.
func (m *MT19937) Uint32() uint32 {
	if m.index >= mtN {
		m.generate()
	}
	y := m.state[m.index]
	m.index++
	// Tempering.
	y ^= y >> 11
	y ^= (y << 7) & 0x9D2C5680
	y ^= (y << 15) & 0xEFC60000
	y ^= y >> 18
	return y
}

// Uint64 returns two consecutive 32-bit outputs packed high-then-low, so
// MT19937 satisfies Source.
func (m *MT19937) Uint64() uint64 {
	hi := uint64(m.Uint32())
	lo := uint64(m.Uint32())
	return hi<<32 | lo
}

// generate refreshes the whole state block (the "twist").
func (m *MT19937) generate() {
	for i := 0; i < mtN; i++ {
		y := (m.state[i] & mtUpperMask) | (m.state[(i+1)%mtN] & mtLowerMask)
		next := m.state[(i+mtM)%mtN] ^ (y >> 1)
		if y&1 != 0 {
			next ^= mtMatrixA
		}
		m.state[i] = next
	}
	m.index = 0
}
