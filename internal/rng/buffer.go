package rng

// Buffer is a Source that serves pre-generated 32-bit words from a block,
// falling back to an underlying stream when the block is exhausted.
//
// It realizes the paper's kernel split (§VI-A): a dedicated PRNG kernel
// fills a block of random words per sub-filter per round (keeping the
// PRNG's large state out of the other kernels), and the sampling and
// resampling kernels then consume words from the block. Refill is the
// PRNG kernel's work; Uint64 is what the consumers see.
type Buffer struct {
	bits     []uint32
	pos      int
	fallback BlockSource
}

// NewBuffer creates a buffer of capacity words backed by fallback, which
// both refills the block and serves overflow draws. The buffer starts
// exhausted; call Refill (the PRNG-kernel step) before drawing, or every
// draw silently hits the fallback.
func NewBuffer(capacity int, fallback BlockSource) *Buffer {
	b := &Buffer{bits: make([]uint32, capacity), fallback: fallback}
	b.pos = len(b.bits)
	return b
}

// Refill regenerates the whole block from the fallback stream and rewinds
// the read position. It returns the number of words generated, which the
// PRNG kernel accounts as work.
func (b *Buffer) Refill() int {
	b.fallback.Block(b.bits)
	b.pos = 0
	return len(b.bits)
}

// Remaining returns the unread words left in the block.
func (b *Buffer) Remaining() int { return len(b.bits) - b.pos }

// Uint64 serves two buffered words, or delegates to the fallback stream
// when fewer than two remain.
func (b *Buffer) Uint64() uint64 {
	if b.pos+2 <= len(b.bits) {
		hi := uint64(b.bits[b.pos])
		lo := uint64(b.bits[b.pos+1])
		b.pos += 2
		return hi<<32 | lo
	}
	return b.fallback.Uint64()
}

// Seed reseeds the fallback stream and discards the buffered block.
func (b *Buffer) Seed(seed uint64) {
	b.fallback.Seed(seed)
	b.pos = len(b.bits)
}

var _ Source = (*Buffer)(nil)
