package rng

// Buffer is a Source that serves pre-generated 32-bit words from a block,
// falling back to an underlying stream when the block is exhausted.
//
// It realizes the paper's kernel split (§VI-A): a dedicated PRNG kernel
// fills a block of random words per sub-filter per round (keeping the
// PRNG's large state out of the other kernels), and the sampling and
// resampling kernels then consume words from the block. Refill is the
// PRNG kernel's work; Uint64 is what the consumers see.
//
// Generation is lazy: Refill only repositions the block, and words are
// materialized from the fallback on first read (in chunks for scalar
// draws, exactly-sized for block draws). The observable 32-bit word
// stream — which words land at which block positions, and where the
// fallback stands at every consumption point — is identical to eager
// generation; the unconsumed tail of a block is simply never computed,
// its stream positions skipped at the next Refill. Sub-filter rounds
// consume well under half their block in typical configurations, so
// this halves PRNG work without moving a single draw.
type Buffer struct {
	bits     []uint32
	pos      int // next unread word
	gen      int // words of bits materialized since the last Refill
	fallback BlockSource
}

// bufferChunk is the scalar-path materialization granule: enough to
// amortize the fallback call, small enough that the over-generated tail
// (at most bufferChunk-1 words, skipped at the next Refill) stays cheap.
const bufferChunk = 64

// NewBuffer creates a buffer of capacity words backed by fallback, which
// both refills the block and serves overflow draws. The buffer starts
// exhausted; call Refill (the PRNG-kernel step) before drawing, or every
// draw silently hits the fallback.
func NewBuffer(capacity int, fallback BlockSource) *Buffer {
	b := &Buffer{bits: make([]uint32, capacity), fallback: fallback}
	b.pos = len(b.bits)
	b.gen = len(b.bits)
	return b
}

// Refill starts a fresh block: the fallback is advanced past the
// unmaterialized tail of the previous block (O(1) for counter-based
// streams) and the read position rewinds. It returns the block capacity,
// which the PRNG kernel accounts as work — the device-model cost of the
// paper's PRNG kernel, independent of the lazy host-side realization.
//
//esthera:hotpath noalloc bce
func (b *Buffer) Refill() int {
	skipWords(b.fallback, len(b.bits)-b.gen)
	b.pos, b.gen = 0, 0
	return len(b.bits)
}

// Remaining returns the unread words left in the block.
func (b *Buffer) Remaining() int { return len(b.bits) - b.pos }

// materializeTo generates block words up to position target (clamped to
// capacity). Positions below gen are already materialized and never
// regenerated, so every block word is produced at most once.
func (b *Buffer) materializeTo(target int) {
	if target > len(b.bits) {
		target = len(b.bits)
	}
	if target <= b.gen {
		return
	}
	b.fallback.Block(b.bits[b.gen:target])
	b.gen = target
}

// take returns the next n block words (materializing them as needed) and
// consumes them, or nil if fewer than n remain in the block. It is the
// bulk-draw fast path used by Rand.FillNormals/FillUniforms.
//
//esthera:hotpath noalloc bce
func (b *Buffer) take(n int) []uint32 {
	if b.pos+n > len(b.bits) {
		return nil
	}
	b.materializeTo(b.pos + n)
	w := b.bits[b.pos : b.pos+n : b.pos+n]
	b.pos += n
	return w
}

// Uint64 serves two buffered words, or delegates to the fallback stream
// when fewer than two remain.
//
//esthera:hotpath noalloc bce
func (b *Buffer) Uint64() uint64 {
	if b.pos+2 <= len(b.bits) {
		if b.pos+2 > b.gen {
			b.materializeTo(b.pos + bufferChunk)
		}
		hi := uint64(b.bits[b.pos])
		lo := uint64(b.bits[b.pos+1])
		b.pos += 2
		return hi<<32 | lo
	}
	// Overflow: the eager pipeline had generated the whole block before
	// reaching the fallback, so materialize the tail to put the fallback
	// at the same stream position before delegating.
	b.materializeTo(len(b.bits))
	return b.fallback.Uint64()
}

// Seed reseeds the fallback stream and discards the buffered block.
func (b *Buffer) Seed(seed uint64) {
	b.fallback.Seed(seed)
	b.pos = len(b.bits)
	b.gen = len(b.bits)
}

var _ Source = (*Buffer)(nil)
