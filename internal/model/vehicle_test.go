package model

import (
	"math"
	"testing"

	"esthera/internal/rng"
)

func TestVehicleContract(t *testing.T) { checkModelContract(t, NewVehicle()) }

func TestVehicleRoadDistance(t *testing.T) {
	m := NewVehicle() // grid 100
	cases := []struct{ x, y, want float64 }{
		{0, 0, 0},      // intersection
		{50, 0, 0},     // on a horizontal road
		{0, 50, 0},     // on a vertical road
		{50, 50, 50},   // cell center
		{30, 40, 30},   // closer to the vertical road at x=0? no: dx=30, dy=40 → 30
		{110, 250, 10}, // dx=10, dy=50
	}
	for _, c := range cases {
		if got := m.RoadDistance(c.x, c.y); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("RoadDistance(%v,%v) = %v, want %v", c.x, c.y, got, c.want)
		}
	}
}

func TestVehicleMapPriorPrefersRoads(t *testing.T) {
	m := NewVehicle()
	onRoad := []float64{50, 0, 0, 10}
	offRoad := []float64{50, 50, 0, 10}
	z := []float64{50, 25, 10} // GPS between the two, equidistant
	if m.LogLikelihood(onRoad, z) <= m.LogLikelihood(offRoad, z) {
		t.Fatal("map prior must favor the on-road hypothesis")
	}
	// With map matching disabled the two are symmetric.
	m.SigmaRoad = 0
	a := m.LogLikelihood(onRoad, z)
	b := m.LogLikelihood(offRoad, z)
	if math.Abs(a-b) > 1e-9 {
		t.Fatalf("without map prior, symmetric hypotheses must tie: %v vs %v", a, b)
	}
}

func TestVehicleRouteStaysOnRoads(t *testing.T) {
	m := NewVehicle()
	r := NewVehicleRoute(m)
	x := make([]float64, 4)
	for k := 0; k <= 300; k++ {
		r.TrueState(k, x)
		if d := m.RoadDistance(x[0], x[1]); d > 1e-9 {
			t.Fatalf("step %d: route %v is %v m off-road", k, x[:2], d)
		}
		if x[3] != r.Speed {
			t.Fatalf("step %d: route speed %v", k, x[3])
		}
	}
}

func TestVehicleRouteGeometry(t *testing.T) {
	m := NewVehicle()
	r := NewVehicleRoute(m) // 5 m/step, 200 m legs → 40 steps/leg
	x := make([]float64, 4)
	r.TrueState(0, x)
	if x[0] != 0 || x[1] != 0 || x[2] != 0 {
		t.Fatalf("route start %v", x)
	}
	r.TrueState(40, x) // end of first east leg
	if math.Abs(x[0]-200) > 1e-9 || math.Abs(x[1]) > 1e-9 {
		t.Fatalf("after leg 1: %v, want (200,0)", x[:2])
	}
	r.TrueState(80, x) // end of first north leg
	if math.Abs(x[0]-200) > 1e-9 || math.Abs(x[1]-200) > 1e-9 {
		t.Fatalf("after leg 2: %v, want (200,200)", x[:2])
	}
	// Controls: zero on legs, ±(π/2)/Dt spikes at corners, and they
	// integrate to the route headings.
	u := make([]float64, 1)
	heading := 0.0
	for k := 1; k <= 120; k++ {
		r.Control(k, u)
		heading += u[0] * m.Dt
		r.TrueState(k, x)
		if math.Abs(heading-x[2]) > 1e-9 {
			t.Fatalf("step %d: integrated heading %v != route heading %v", k, heading, x[2])
		}
	}
}

func TestVehicleStepNonNegativeSpeed(t *testing.T) {
	m := NewVehicle()
	r := rng.New(rng.NewPhilox(5))
	src := []float64{0, 0, 0, 0.01} // nearly stopped
	dst := make([]float64, 4)
	for i := 0; i < 1000; i++ {
		m.Step(dst, src, []float64{0}, i, r)
		if dst[3] < 0 {
			t.Fatal("speed went negative")
		}
	}
}
