package model

import "esthera/internal/rng"

// Scenario couples a model with a ground-truth trajectory and control
// schedule, so the experiment harness can replay the same truth across
// filter configurations (common random numbers, DESIGN.md §7).
type Scenario interface {
	// Model returns the system being estimated.
	Model() Model
	// TrueState writes the ground-truth state at step k (k >= 0; k = 0 is
	// the initial state) into x.
	TrueState(k int, x []float64)
	// Control writes the control input u_k applied between steps k-1 and
	// k. For uncontrolled models u has length 0.
	Control(k int, u []float64)
}

// Simulated is a Scenario whose truth is produced by running the model's
// own stochastic dynamics from a seeded draw of the prior — the standard
// setup for the UNGM / bearings / volatility benchmarks. States are
// cached so TrueState(k) is O(1) after first access and identical across
// repeated calls.
type Simulated struct {
	m      Model
	r      *rng.Rand
	states [][]float64
	u      []float64
}

// NewSimulated returns a simulated scenario for m with truth seeded by
// seed (independent of any filter seed).
func NewSimulated(m Model, seed uint64) *Simulated {
	s := &Simulated{m: m, r: rng.New(rng.NewPhiloxStream(seed, 0x7157)), u: make([]float64, m.ControlDim())}
	x0 := make([]float64, m.StateDim())
	s.m.InitParticle(x0, s.r)
	s.states = append(s.states, x0)
	return s
}

// Model implements Scenario.
func (s *Simulated) Model() Model { return s.m }

// TrueState implements Scenario.
func (s *Simulated) TrueState(k int, x []float64) {
	for len(s.states) <= k {
		prev := s.states[len(s.states)-1]
		next := make([]float64, s.m.StateDim())
		s.m.Step(next, prev, s.u, len(s.states), s.r)
		s.states = append(s.states, next)
	}
	copy(x, s.states[k])
}

// Control implements Scenario (uncontrolled: zero-length u).
func (s *Simulated) Control(int, []float64) {}
