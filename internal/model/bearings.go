package model

import (
	"math"

	"esthera/internal/mat"
	"esthera/internal/rng"
)

// Bearings is planar bearings-only target tracking: a near-constant-
// velocity target observed as noisy bearing angles from two fixed
// sensors. State (x, y, vx, vy) — the four-state-variable "small
// estimation problem" class for which the paper reports kHz update rates.
// Two sensors make the target observable without a range measurement.
type Bearings struct {
	// Dt is the sampling interval (default 1).
	Dt float64
	// SigmaA is the acceleration (process) noise std dev (default 0.05).
	SigmaA float64
	// SigmaB is the bearing noise std dev in radians (default 0.02).
	SigmaB float64
	// Sensors holds the two sensor positions; the zero value uses
	// (-10,0) and (10,0).
	Sensors [2][2]float64
	// Prior spread.
	InitPosSigma, InitVelSigma float64
}

// NewBearings returns the model with default parameters.
func NewBearings() *Bearings {
	return &Bearings{
		Dt:           1,
		SigmaA:       0.05,
		SigmaB:       0.02,
		Sensors:      [2][2]float64{{-10, 0}, {10, 0}},
		InitPosSigma: 2,
		InitVelSigma: 0.5,
	}
}

// Name implements Model.
func (m *Bearings) Name() string { return "bearings" }

// StateDim implements Model.
func (m *Bearings) StateDim() int { return 4 }

// MeasurementDim implements Model.
func (m *Bearings) MeasurementDim() int { return 2 }

// ControlDim implements Model.
func (m *Bearings) ControlDim() int { return 0 }

// InitParticle implements Model.
func (m *Bearings) InitParticle(x []float64, r *rng.Rand) {
	x[0] = r.Normal(0, m.InitPosSigma)
	x[1] = r.Normal(5, m.InitPosSigma)
	x[2] = r.Normal(0.5, m.InitVelSigma)
	x[3] = r.Normal(0, m.InitVelSigma)
}

// StepMean implements Linearizable.
func (m *Bearings) StepMean(dst, src, _ []float64, _ int) {
	dst[0] = src[0] + m.Dt*src[2]
	dst[1] = src[1] + m.Dt*src[3]
	dst[2] = src[2]
	dst[3] = src[3]
}

// Step implements Model.
func (m *Bearings) Step(dst, src, u []float64, k int, r *rng.Rand) {
	m.StepMean(dst, src, u, k)
	// Discretized white acceleration noise.
	ax := r.Normal(0, m.SigmaA)
	ay := r.Normal(0, m.SigmaA)
	h := m.Dt
	dst[0] += 0.5 * h * h * ax
	dst[1] += 0.5 * h * h * ay
	dst[2] += h * ax
	dst[3] += h * ay
}

// MeasureMean implements Linearizable.
func (m *Bearings) MeasureMean(z, x []float64) {
	for s := 0; s < 2; s++ {
		z[s] = math.Atan2(x[1]-m.Sensors[s][1], x[0]-m.Sensors[s][0])
	}
}

// Measure implements Model.
func (m *Bearings) Measure(z, x []float64, r *rng.Rand) {
	m.MeasureMean(z, x)
	for s := range z {
		z[s] += r.Normal(0, m.SigmaB)
	}
}

// LogLikelihood implements Model. Bearing residuals are wrapped to
// (-π, π] before evaluation.
func (m *Bearings) LogLikelihood(x, z []float64) float64 {
	var pred [2]float64
	m.MeasureMean(pred[:], x)
	ll := 0.0
	for s := range z {
		d := wrapAngle(z[s] - pred[s])
		ll += LogNormPDF(d, 0, m.SigmaB)
	}
	return ll
}

// TrackedPosition implements Model.
func (m *Bearings) TrackedPosition(x []float64) (float64, float64) { return x[0], x[1] }

// StepJacobian implements Linearizable.
func (m *Bearings) StepJacobian(jac *mat.Matrix, _, _ []float64, _ int) {
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			jac.Set(i, j, 0)
		}
		jac.Set(i, i, 1)
	}
	jac.Set(0, 2, m.Dt)
	jac.Set(1, 3, m.Dt)
}

// MeasureJacobian implements Linearizable.
func (m *Bearings) MeasureJacobian(jac *mat.Matrix, x []float64) {
	for s := 0; s < 2; s++ {
		dx := x[0] - m.Sensors[s][0]
		dy := x[1] - m.Sensors[s][1]
		r2 := dx*dx + dy*dy
		if r2 == 0 {
			r2 = 1e-12
		}
		jac.Set(s, 0, -dy/r2)
		jac.Set(s, 1, dx/r2)
		jac.Set(s, 2, 0)
		jac.Set(s, 3, 0)
	}
}

// ProcessCov implements Linearizable.
func (m *Bearings) ProcessCov() *mat.Matrix {
	h := m.Dt
	q := m.SigmaA * m.SigmaA
	// Discretized white-acceleration covariance per axis:
	// [h⁴/4 h³/2; h³/2 h²]·q.
	c := mat.NewMatrix(4, 4)
	c.Set(0, 0, q*h*h*h*h/4)
	c.Set(0, 2, q*h*h*h/2)
	c.Set(2, 0, q*h*h*h/2)
	c.Set(2, 2, q*h*h)
	c.Set(1, 1, q*h*h*h*h/4)
	c.Set(1, 3, q*h*h*h/2)
	c.Set(3, 1, q*h*h*h/2)
	c.Set(3, 3, q*h*h)
	// The single-noise-source discretization is exactly rank-1 per axis;
	// a tiny diagonal keeps the matrix strictly positive definite for
	// consumers that factorize it.
	for i := 0; i < 4; i++ {
		c.Set(i, i, c.At(i, i)+1e-12)
	}
	return c
}

// MeasureCov implements Linearizable.
func (m *Bearings) MeasureCov() *mat.Matrix {
	v := m.SigmaB * m.SigmaB
	return mat.Diag([]float64{v, v})
}

// WrapResidual wraps the bearing residuals into (-π, π] so Kalman-type
// updates handle the angular discontinuity (consumed by the EKF/UKF
// baselines via an optional interface).
func (m *Bearings) WrapResidual(res []float64) {
	for i := range res {
		res[i] = wrapAngle(res[i])
	}
}

// wrapAngle maps an angle to (-π, π].
func wrapAngle(a float64) float64 {
	for a > math.Pi {
		a -= 2 * math.Pi
	}
	for a <= -math.Pi {
		a += 2 * math.Pi
	}
	return a
}

// StepVec implements VecModel: two acceleration draws per row, consumed
// row-major exactly as Step draws them.
//
//esthera:hotpath noalloc bce
func (m *Bearings) StepVec(dst, src [][]float64, _ []float64, _ int, r *rng.Rand) {
	n := len(dst[0])
	d0, d1, d2, d3 := dst[0][:n:n], dst[1][:n:n], dst[2][:n:n], dst[3][:n:n]
	s0, s1, s2, s3 := src[0][:n], src[1][:n], src[2][:n], src[3][:n]
	zs := r.Normals(2 * n)[: 2*n : 2*n]
	h := m.Dt
	hh := 0.5 * h * h
	sa := m.SigmaA
	for i := range d0 {
		ax := sa * zs[2*i]
		ay := sa * zs[2*i+1]
		d0[i] = s0[i] + h*s2[i] + hh*ax
		d1[i] = s1[i] + h*s3[i] + hh*ay
		d2[i] = s2[i] + h*ax
		d3[i] = s3[i] + h*ay
	}
}

// LogLikelihoodVec implements VecModel with the noise stddev's log and
// the sensor coordinates hoisted out of the row loop.
//
//esthera:hotpath noalloc bce
func (m *Bearings) LogLikelihoodVec(ll []float64, x [][]float64, z []float64) {
	n := len(ll)
	out := ll[:n:n]
	x0, x1 := x[0][:n], x[1][:n]
	sigma := m.SigmaB
	logSigma := math.Log(sigma)
	halfLog2Pi := 0.5 * math.Log(2*math.Pi)
	s0x, s0y := m.Sensors[0][0], m.Sensors[0][1]
	s1x, s1y := m.Sensors[1][0], m.Sensors[1][1]
	z0, z1 := z[0], z[1]
	for i := range out {
		d0 := wrapAngle(z0-math.Atan2(x1[i]-s0y, x0[i]-s0x)) / sigma
		d1 := wrapAngle(z1-math.Atan2(x1[i]-s1y, x0[i]-s1x)) / sigma
		out[i] = (-0.5*d0*d0 - logSigma - halfLog2Pi) + (-0.5*d1*d1 - logSigma - halfLog2Pi)
	}
}

// InitVec implements VecModel: four prior draws per row, row-major.
//
//esthera:hotpath noalloc bce
func (m *Bearings) InitVec(x [][]float64, r *rng.Rand) {
	n := len(x[0])
	x0, x1, x2, x3 := x[0][:n:n], x[1][:n:n], x[2][:n:n], x[3][:n:n]
	zs := r.Normals(4 * n)[: 4*n : 4*n]
	ps, vs := m.InitPosSigma, m.InitVelSigma
	for i := range x0 {
		x0[i] = ps * zs[4*i]
		x1[i] = 5 + ps*zs[4*i+1]
		x2[i] = 0.5 + vs*zs[4*i+2]
		x3[i] = vs * zs[4*i+3]
	}
}

var (
	_ Linearizable = (*Bearings)(nil)
	_ VecModel     = (*Bearings)(nil)
)
