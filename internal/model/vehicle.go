package model

import (
	"math"

	"esthera/internal/rng"
)

// Vehicle is a planar vehicle localization and map-matching model, after
// the application the paper's related work studies on multicore/manycore
// hardware (Park & Tosun 2012): "the state dimension is only four".
//
// State: (x, y, heading θ, speed v). The vehicle follows unicycle
// dynamics under a turn-rate control; measurements are a noisy GPS fix
// plus wheel odometry; and — the map-matching part — the likelihood
// includes a soft on-road constraint against a synthetic Manhattan road
// grid. The on-road prior makes the posterior multimodal near
// intersections (the vehicle could be on either crossing road), which is
// what makes this a particle-filter problem rather than a Kalman one.
type Vehicle struct {
	// Dt is the time step (default 0.5 s).
	Dt float64
	// GridSpacing is the road-grid pitch in meters (default 100).
	GridSpacing float64
	// SigmaRoad is the on-road soft-constraint width (default 4 m);
	// <= 0 disables map matching (plain GPS localization).
	SigmaRoad float64
	// SigmaGPS is the GPS noise (default 8 m).
	SigmaGPS float64
	// SigmaOdo is the odometry speed noise (default 0.3 m/s).
	SigmaOdo float64
	// SigmaTurn / SigmaAcc are the process noises (default 0.02 rad,
	// 0.2 m/s per step).
	SigmaTurn, SigmaAcc float64
	// InitPosSigma / InitHeadingSigma / InitSpeedSigma spread the prior
	// around the route start.
	InitPosSigma, InitHeadingSigma, InitSpeedSigma float64
}

// NewVehicle returns the model with default parameters (map matching on).
func NewVehicle() *Vehicle {
	return &Vehicle{
		Dt:          0.5,
		GridSpacing: 100,
		SigmaRoad:   4,
		SigmaGPS:    8,
		SigmaOdo:    0.3,
		SigmaTurn:   0.02,
		SigmaAcc:    0.2,

		InitPosSigma:     10,
		InitHeadingSigma: 0.3,
		InitSpeedSigma:   1,
	}
}

// Name implements Model.
func (m *Vehicle) Name() string {
	if m.SigmaRoad > 0 {
		return "vehicle-map"
	}
	return "vehicle"
}

// StateDim implements Model.
func (m *Vehicle) StateDim() int { return 4 }

// MeasurementDim implements Model: GPS (2) + odometry speed.
func (m *Vehicle) MeasurementDim() int { return 3 }

// ControlDim implements Model: commanded turn rate.
func (m *Vehicle) ControlDim() int { return 1 }

// InitParticle implements Model: prior around the route origin, heading
// east at ~10 m/s.
func (m *Vehicle) InitParticle(x []float64, r *rng.Rand) {
	x[0] = r.Normal(0, m.InitPosSigma)
	x[1] = r.Normal(0, m.InitPosSigma)
	x[2] = r.Normal(0, m.InitHeadingSigma)
	x[3] = r.Normal(10, m.InitSpeedSigma)
}

// Step implements Model: unicycle dynamics.
func (m *Vehicle) Step(dst, src, u []float64, _ int, r *rng.Rand) {
	omega := 0.0
	if len(u) > 0 {
		omega = u[0]
	}
	theta := src[2] + omega*m.Dt + r.Normal(0, m.SigmaTurn)
	v := src[3] + r.Normal(0, m.SigmaAcc)
	if v < 0 {
		v = 0
	}
	dst[0] = src[0] + v*math.Cos(theta)*m.Dt
	dst[1] = src[1] + v*math.Sin(theta)*m.Dt
	dst[2] = theta
	dst[3] = v
}

// Measure implements Model.
func (m *Vehicle) Measure(z, x []float64, r *rng.Rand) {
	z[0] = x[0] + r.Normal(0, m.SigmaGPS)
	z[1] = x[1] + r.Normal(0, m.SigmaGPS)
	z[2] = x[3] + r.Normal(0, m.SigmaOdo)
}

// RoadDistance returns the distance from (x, y) to the nearest road
// centerline of the Manhattan grid.
func (m *Vehicle) RoadDistance(x, y float64) float64 {
	g := m.GridSpacing
	dx := math.Abs(x - g*math.Round(x/g))
	dy := math.Abs(y - g*math.Round(y/g))
	return math.Min(dx, dy)
}

// LogLikelihood implements Model: GPS and odometry channels, plus the
// soft on-road map prior when map matching is enabled.
func (m *Vehicle) LogLikelihood(x, z []float64) float64 {
	ll := LogNormPDF(z[0], x[0], m.SigmaGPS) +
		LogNormPDF(z[1], x[1], m.SigmaGPS) +
		LogNormPDF(z[2], x[3], m.SigmaOdo)
	if m.SigmaRoad > 0 {
		d := m.RoadDistance(x[0], x[1])
		ll -= 0.5 * (d / m.SigmaRoad) * (d / m.SigmaRoad)
	}
	return ll
}

// TrackedPosition implements Model.
func (m *Vehicle) TrackedPosition(x []float64) (float64, float64) { return x[0], x[1] }

// VehicleRoute is a scripted drive along the road grid: a staircase of
// straight legs (east, north, east, north, …) joined by instantaneous 90°
// turns at intersections, so the ground truth lies exactly on road
// centerlines at all times. It implements Scenario.
type VehicleRoute struct {
	m *Vehicle
	// LegLen is the length of each straight leg in meters (default 200,
	// two grid cells).
	LegLen float64
	// Speed is the constant route speed (default 10 m/s).
	Speed float64
}

// NewVehicleRoute builds the scenario: the vehicle starts at the origin
// heading east at 10 m/s.
func NewVehicleRoute(m *Vehicle) *VehicleRoute {
	return &VehicleRoute{m: m, LegLen: 200, Speed: 10}
}

// Model implements Scenario.
func (r *VehicleRoute) Model() Model { return r.m }

// at returns the route pose (x, y, heading) at travelled distance s.
func (r *VehicleRoute) at(s float64) (x, y, heading float64) {
	if s < 0 {
		s = 0
	}
	seg := int(s / r.LegLen)
	off := s - float64(seg)*r.LegLen
	east := seg%2 == 0
	// Completed legs of each kind before the current segment.
	doneEast := (seg + 1) / 2
	doneNorth := seg / 2
	if east {
		doneEast = seg / 2
		return float64(doneEast)*r.LegLen + off, float64(doneNorth) * r.LegLen, 0
	}
	return float64(doneEast) * r.LegLen, float64(doneNorth)*r.LegLen + off, math.Pi / 2
}

// TrueState implements Scenario.
func (r *VehicleRoute) TrueState(k int, x []float64) {
	px, py, heading := r.at(float64(k) * r.Speed * r.m.Dt)
	x[0], x[1], x[2], x[3] = px, py, heading, r.Speed
}

// Control implements Scenario: the turn rate that realizes the route's
// heading change between steps k-1 and k (a one-step spike of ±(π/2)/Dt
// at corners, zero on the legs).
func (r *VehicleRoute) Control(k int, u []float64) {
	if len(u) == 0 {
		return
	}
	_, _, h1 := r.at(float64(k-1) * r.Speed * r.m.Dt)
	_, _, h2 := r.at(float64(k) * r.Speed * r.m.Dt)
	u[0] = (h2 - h1) / r.m.Dt
}

var (
	_ Model    = (*Vehicle)(nil)
	_ Scenario = (*VehicleRoute)(nil)
)
