package model

import "esthera/internal/rng"

// VecModel is the optional span-vectorized extension of Model consumed by
// the SoA kernel path (internal/kernels): instead of one interface
// dispatch per particle, a VecModel processes a whole row span per call
// over structure-of-arrays columns.
//
// Columns: dst, src, and x are StateDim() slices, one per state
// dimension, all of one common length n (the span's row count); row i of
// the span is the particle (dst[0][i], …, dst[dim-1][i]).
//
// Bit-exactness contract: a vectorized method must consume random draws
// in EXACTLY the per-lane order the scalar method does — row 0's draws
// first, in the scalar method's order, then row 1's, and so on (use
// rng.Rand's FillNormals/Normals, which preserve scalar draw order) —
// and must produce bit-identical float64 results for every row. Hoisting
// loop-invariant values (a cached math.Log(sigma), the 8·cos(1.2k) term)
// is fine; reassociating per-row arithmetic is not. The golden-trace
// pins in internal/kernels enforce this for every shipped VecModel.
type VecModel interface {
	Model
	// StepVec samples dst[·][i] ~ p(x_k | x_{k-1}=src[·][i], u) for every
	// row i, bit-identical to n sequential Step calls on the same Rand.
	StepVec(dst, src [][]float64, u []float64, k int, r *rng.Rand)
	// LogLikelihoodVec writes log p(z | x[·][i]) into ll[i] for every row,
	// bit-identical to n LogLikelihood calls.
	LogLikelihoodVec(ll []float64, x [][]float64, z []float64)
	// InitVec samples every row from the prior p(x₀), bit-identical to n
	// sequential InitParticle calls.
	InitVec(x [][]float64, r *rng.Rand)
}

// Vectorize returns a span-vectorized view of m: m itself when it
// implements VecModel natively, else a generic per-lane adapter. The
// adapter gathers each row into scratch vectors and calls the scalar
// methods, so it is draw-order and bit-exactness neutral by construction
// — but it carries per-call scratch and is NOT safe for concurrent use;
// create one per work-group (native VecModels are stateless and shared).
func Vectorize(m Model) VecModel {
	if vm, ok := m.(VecModel); ok {
		return vm
	}
	d := m.StateDim()
	return &vecAdapter{Model: m, dst: make([]float64, d), src: make([]float64, d)}
}

type vecAdapter struct {
	Model
	dst, src []float64
}

func (a *vecAdapter) StepVec(dst, src [][]float64, u []float64, k int, r *rng.Rand) {
	if len(dst) == 0 {
		return
	}
	n := len(dst[0])
	for i := 0; i < n; i++ {
		for c := range src {
			a.src[c] = src[c][i]
		}
		a.Model.Step(a.dst, a.src, u, k, r)
		for c := range dst {
			dst[c][i] = a.dst[c]
		}
	}
}

func (a *vecAdapter) LogLikelihoodVec(ll []float64, x [][]float64, z []float64) {
	for i := range ll {
		for c := range x {
			a.src[c] = x[c][i]
		}
		ll[i] = a.Model.LogLikelihood(a.src, z)
	}
}

func (a *vecAdapter) InitVec(x [][]float64, r *rng.Rand) {
	if len(x) == 0 {
		return
	}
	n := len(x[0])
	for i := 0; i < n; i++ {
		a.Model.InitParticle(a.dst, r)
		for c := range x {
			x[c][i] = a.dst[c]
		}
	}
}
