package model

import (
	"math"

	"esthera/internal/mat"
	"esthera/internal/rng"
)

// UNGM is the univariate nonstationary growth model of Gordon, Salmond &
// Smith (1993) — the canonical severely non-linear, bimodal particle-
// filter benchmark:
//
//	x_k = x_{k-1}/2 + 25·x_{k-1}/(1+x_{k-1}²) + 8·cos(1.2·k) + w,  w ~ N(0, Q)
//	z_k = x_k²/20 + v,                                              v ~ N(0, R)
//
// The squared measurement makes the posterior bimodal (±x are nearly
// indistinguishable), which defeats Kalman-type filters — exactly the
// regime the paper motivates particle filters for.
type UNGM struct {
	// Q and R are the process and measurement noise variances. Zero
	// values default to the literature-standard Q=10, R=1.
	Q, R float64
	// P0 is the prior variance of x₀ (default 5).
	P0 float64
}

// NewUNGM returns the model with the standard parameters.
func NewUNGM() *UNGM { return &UNGM{Q: 10, R: 1, P0: 5} }

func (m *UNGM) q() float64 {
	if m.Q == 0 {
		return 10
	}
	return m.Q
}

func (m *UNGM) rv() float64 {
	if m.R == 0 {
		return 1
	}
	return m.R
}

func (m *UNGM) p0() float64 {
	if m.P0 == 0 {
		return 5
	}
	return m.P0
}

// Name implements Model.
func (m *UNGM) Name() string { return "ungm" }

// StateDim implements Model.
func (m *UNGM) StateDim() int { return 1 }

// MeasurementDim implements Model.
func (m *UNGM) MeasurementDim() int { return 1 }

// ControlDim implements Model.
func (m *UNGM) ControlDim() int { return 0 }

// InitParticle implements Model.
func (m *UNGM) InitParticle(x []float64, r *rng.Rand) {
	x[0] = r.Normal(0, math.Sqrt(m.p0()))
}

// StepMean implements Linearizable.
func (m *UNGM) StepMean(dst, src, _ []float64, k int) {
	x := src[0]
	dst[0] = x/2 + 25*x/(1+x*x) + 8*math.Cos(1.2*float64(k))
}

// Step implements Model.
func (m *UNGM) Step(dst, src, u []float64, k int, r *rng.Rand) {
	m.StepMean(dst, src, u, k)
	dst[0] += r.Normal(0, math.Sqrt(m.q()))
}

// MeasureMean implements Linearizable.
func (m *UNGM) MeasureMean(z, x []float64) { z[0] = x[0] * x[0] / 20 }

// Measure implements Model.
func (m *UNGM) Measure(z, x []float64, r *rng.Rand) {
	m.MeasureMean(z, x)
	z[0] += r.Normal(0, math.Sqrt(m.rv()))
}

// LogLikelihood implements Model.
func (m *UNGM) LogLikelihood(x, z []float64) float64 {
	return LogNormPDF(z[0], x[0]*x[0]/20, math.Sqrt(m.rv()))
}

// TrackedPosition implements Model.
func (m *UNGM) TrackedPosition(x []float64) (float64, float64) { return x[0], 0 }

// StepJacobian implements Linearizable.
func (m *UNGM) StepJacobian(jac *mat.Matrix, src, _ []float64, _ int) {
	x := src[0]
	d := 1 + x*x
	jac.Set(0, 0, 0.5+25*(1-x*x)/(d*d))
}

// MeasureJacobian implements Linearizable.
func (m *UNGM) MeasureJacobian(jac *mat.Matrix, x []float64) {
	jac.Set(0, 0, x[0]/10)
}

// ProcessCov implements Linearizable.
func (m *UNGM) ProcessCov() *mat.Matrix { return mat.Diag([]float64{m.q()}) }

// MeasureCov implements Linearizable.
func (m *UNGM) MeasureCov() *mat.Matrix { return mat.Diag([]float64{m.rv()}) }

// StepVec implements VecModel. The 8·cos(1.2k) forcing term and the
// process-noise stddev are loop-invariant and hoisted; the per-row
// arithmetic matches Step exactly.
//
//esthera:hotpath noalloc bce
func (m *UNGM) StepVec(dst, src [][]float64, _ []float64, k int, r *rng.Rand) {
	n := len(dst[0])
	d0 := dst[0][:n:n]
	s0 := src[0][:n]
	zs := r.Normals(n)[:n]
	c := 8 * math.Cos(1.2*float64(k))
	sq := math.Sqrt(m.q())
	for i := range d0 {
		x := s0[i]
		d0[i] = x/2 + 25*x/(1+x*x) + c + sq*zs[i]
	}
}

// LogLikelihoodVec implements VecModel with the measurement-noise stddev
// and its log hoisted out of the row loop.
//
//esthera:hotpath noalloc bce
func (m *UNGM) LogLikelihoodVec(ll []float64, x [][]float64, z []float64) {
	z0 := z[0]
	sigma := math.Sqrt(m.rv())
	logSigma := math.Log(sigma)
	halfLog2Pi := 0.5 * math.Log(2*math.Pi)
	n := len(ll)
	out := ll[:n:n]
	x0 := x[0][:n]
	for i := range out {
		d := (z0 - x0[i]*x0[i]/20) / sigma
		out[i] = -0.5*d*d - logSigma - halfLog2Pi
	}
}

// InitVec implements VecModel.
//
//esthera:hotpath noalloc bce
func (m *UNGM) InitVec(x [][]float64, r *rng.Rand) {
	x0 := x[0]
	sp := math.Sqrt(m.p0())
	zs := r.Normals(len(x0))
	for i := range x0 {
		x0[i] = sp * zs[i]
	}
}

var (
	_ Linearizable = (*UNGM)(nil)
	_ VecModel     = (*UNGM)(nil)
)
