package model

import (
	"math"

	"esthera/internal/rng"
)

// StochasticVolatility is the canonical discrete-time SV model of the
// econometrics literature (Flury & Shephard 2011, cited in the paper's
// introduction as a particle-filter application domain):
//
//	x_k = μ + φ·(x_{k-1} - μ) + σ_η·w,   w ~ N(0,1)   (log-volatility)
//	z_k = ε·exp(x_k/2),                  ε ~ N(0,1)   (observed return)
//
// The measurement density p(z|x) = N(z; 0, exp(x)) is non-Gaussian in x,
// so Kalman filters do not apply directly; the particle filter estimates
// the latent log-volatility path.
type StochasticVolatility struct {
	// Mu is the long-run mean of log-volatility (default -1).
	Mu float64
	// Phi is the AR(1) persistence (default 0.98).
	Phi float64
	// SigmaEta is the volatility-of-volatility (default 0.16).
	SigmaEta float64
}

// NewStochasticVolatility returns the model with standard parameters.
func NewStochasticVolatility() *StochasticVolatility {
	return &StochasticVolatility{Mu: -1, Phi: 0.98, SigmaEta: 0.16}
}

// Name implements Model.
func (m *StochasticVolatility) Name() string { return "volatility" }

// StateDim implements Model.
func (m *StochasticVolatility) StateDim() int { return 1 }

// MeasurementDim implements Model.
func (m *StochasticVolatility) MeasurementDim() int { return 1 }

// ControlDim implements Model.
func (m *StochasticVolatility) ControlDim() int { return 0 }

// InitParticle samples from the stationary distribution of the AR(1).
func (m *StochasticVolatility) InitParticle(x []float64, r *rng.Rand) {
	sd := m.SigmaEta / math.Sqrt(1-m.Phi*m.Phi)
	x[0] = r.Normal(m.Mu, sd)
}

// Step implements Model.
func (m *StochasticVolatility) Step(dst, src, _ []float64, _ int, r *rng.Rand) {
	dst[0] = m.Mu + m.Phi*(src[0]-m.Mu) + r.Normal(0, m.SigmaEta)
}

// Measure implements Model.
func (m *StochasticVolatility) Measure(z, x []float64, r *rng.Rand) {
	z[0] = r.NormFloat64() * math.Exp(x[0]/2)
}

// LogLikelihood implements Model: log N(z; 0, exp(x)).
func (m *StochasticVolatility) LogLikelihood(x, z []float64) float64 {
	return LogNormPDF(z[0], 0, math.Exp(x[0]/2))
}

// TrackedPosition implements Model.
func (m *StochasticVolatility) TrackedPosition(x []float64) (float64, float64) {
	return x[0], 0
}
