package model

import (
	"math"
	"testing"

	"esthera/internal/mat"
	"esthera/internal/rng"
)

func TestLogNormPDF(t *testing.T) {
	// Standard normal at 0: log(1/sqrt(2π)).
	want := -0.5 * math.Log(2*math.Pi)
	if got := LogNormPDF(0, 0, 1); math.Abs(got-want) > 1e-12 {
		t.Fatalf("LogNormPDF(0,0,1) = %v, want %v", got, want)
	}
	// Scaling: N(x; m, s) density at mean is 1/(s·sqrt(2π)).
	if got := LogNormPDF(3, 3, 2); math.Abs(got-(want-math.Log(2))) > 1e-12 {
		t.Fatalf("LogNormPDF at mean with sigma 2 wrong: %v", got)
	}
	// Symmetry.
	if LogNormPDF(1, 0, 1) != LogNormPDF(-1, 0, 1) {
		t.Fatal("LogNormPDF not symmetric")
	}
}

func TestNumericalJacobianLinear(t *testing.T) {
	// f(x) = A·x must give back A.
	a := mat.FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	f := func(dst, x []float64) { copy(dst, a.MulVec(x)) }
	jac := mat.NewMatrix(2, 3)
	NumericalJacobian(jac, f, []float64{0.3, -0.7, 1.2})
	for i := range a.Data {
		if math.Abs(jac.Data[i]-a.Data[i]) > 1e-6 {
			t.Fatalf("jacobian[%d] = %v, want %v", i, jac.Data[i], a.Data[i])
		}
	}
}

func TestNumericalJacobianNonlinear(t *testing.T) {
	f := func(dst, x []float64) { dst[0] = math.Sin(x[0]) * x[1] }
	jac := mat.NewMatrix(1, 2)
	x := []float64{0.5, 2}
	NumericalJacobian(jac, f, x)
	if math.Abs(jac.At(0, 0)-2*math.Cos(0.5)) > 1e-6 {
		t.Fatalf("d/dx0 = %v, want %v", jac.At(0, 0), 2*math.Cos(0.5))
	}
	if math.Abs(jac.At(0, 1)-math.Sin(0.5)) > 1e-6 {
		t.Fatalf("d/dx1 = %v, want %v", jac.At(0, 1), math.Sin(0.5))
	}
}

// checkModelContract exercises the generic Model invariants.
func checkModelContract(t *testing.T, m Model) {
	t.Helper()
	r := rng.New(rng.NewPhilox(5))
	n, zd, ud := m.StateDim(), m.MeasurementDim(), m.ControlDim()
	if n <= 0 || zd <= 0 || ud < 0 {
		t.Fatalf("%s: bad dimensions %d/%d/%d", m.Name(), n, zd, ud)
	}
	x := make([]float64, n)
	m.InitParticle(x, r)
	for i, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("%s: InitParticle produced non-finite x[%d]", m.Name(), i)
		}
	}
	dst := make([]float64, n)
	u := make([]float64, ud)
	m.Step(dst, x, u, 1, r)
	for i, v := range dst {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("%s: Step produced non-finite dst[%d]", m.Name(), i)
		}
	}
	z := make([]float64, zd)
	m.Measure(z, dst, r)
	ll := m.LogLikelihood(dst, z)
	if math.IsNaN(ll) || math.IsInf(ll, 1) {
		t.Fatalf("%s: LogLikelihood = %v", m.Name(), ll)
	}
	// A state consistent with z must be at least as likely as a far-off one.
	far := append([]float64(nil), dst...)
	for i := range far {
		far[i] += 50
	}
	if m.LogLikelihood(far, z) > ll {
		t.Fatalf("%s: distant state more likely than the generating one", m.Name())
	}
	px, py := m.TrackedPosition(dst)
	if math.IsNaN(px) || math.IsNaN(py) {
		t.Fatalf("%s: TrackedPosition NaN", m.Name())
	}
	if m.Name() == "" {
		t.Fatal("empty model name")
	}
}

func TestUNGMContract(t *testing.T)       { checkModelContract(t, NewUNGM()) }
func TestBearingsContract(t *testing.T)   { checkModelContract(t, NewBearings()) }
func TestVolatilityContract(t *testing.T) { checkModelContract(t, NewStochasticVolatility()) }

func TestUNGMStepMeanKnown(t *testing.T) {
	m := NewUNGM()
	dst := make([]float64, 1)
	m.StepMean(dst, []float64{1}, nil, 0)
	want := 0.5 + 25.0/2 + 8.0 // cos(0)=1
	if math.Abs(dst[0]-want) > 1e-12 {
		t.Fatalf("UNGM StepMean = %v, want %v", dst[0], want)
	}
}

func TestUNGMJacobianMatchesNumeric(t *testing.T) {
	m := NewUNGM()
	for _, x0 := range []float64{-3, -0.5, 0, 0.8, 10} {
		jac := mat.NewMatrix(1, 1)
		m.StepJacobian(jac, []float64{x0}, nil, 2)
		num := mat.NewMatrix(1, 1)
		NumericalJacobian(num, func(dst, x []float64) { m.StepMean(dst, x, nil, 2) }, []float64{x0})
		if math.Abs(jac.At(0, 0)-num.At(0, 0)) > 1e-5 {
			t.Fatalf("x=%v: analytic %v vs numeric %v", x0, jac.At(0, 0), num.At(0, 0))
		}
		m.MeasureJacobian(jac, []float64{x0})
		NumericalJacobian(num, m.MeasureMean, []float64{x0})
		if math.Abs(jac.At(0, 0)-num.At(0, 0)) > 1e-5 {
			t.Fatalf("measure jacobian x=%v: %v vs %v", x0, jac.At(0, 0), num.At(0, 0))
		}
	}
}

func TestBearingsJacobianMatchesNumeric(t *testing.T) {
	m := NewBearings()
	x := []float64{1.5, 4.0, 0.3, -0.2}
	jac := mat.NewMatrix(2, 4)
	m.MeasureJacobian(jac, x)
	num := mat.NewMatrix(2, 4)
	NumericalJacobian(num, m.MeasureMean, x)
	for i := range jac.Data {
		if math.Abs(jac.Data[i]-num.Data[i]) > 1e-5 {
			t.Fatalf("bearings jacobian[%d]: analytic %v vs numeric %v", i, jac.Data[i], num.Data[i])
		}
	}
}

func TestBearingsLikelihoodWrapsAngles(t *testing.T) {
	m := NewBearings()
	x := []float64{0, 5, 0, 0}
	var z [2]float64
	m.MeasureMean(z[:], x)
	// Shift a bearing by a full turn: likelihood must be unchanged.
	zShift := [2]float64{z[0] + 2*math.Pi, z[1]}
	a := m.LogLikelihood(x, z[:])
	b := m.LogLikelihood(x, zShift[:])
	if math.Abs(a-b) > 1e-9 {
		t.Fatalf("likelihood not 2π-periodic: %v vs %v", a, b)
	}
}

func TestWrapAngle(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0}, {math.Pi, math.Pi}, {-math.Pi, math.Pi}, {3 * math.Pi, math.Pi},
		{2 * math.Pi, 0}, {-0.5, -0.5},
	}
	for _, c := range cases {
		if got := wrapAngle(c.in); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("wrapAngle(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestVolatilityStationaryInit(t *testing.T) {
	m := NewStochasticVolatility()
	r := rng.New(rng.NewPhilox(8))
	var sum, sum2 float64
	const n = 100000
	x := make([]float64, 1)
	for i := 0; i < n; i++ {
		m.InitParticle(x, r)
		sum += x[0]
		sum2 += x[0] * x[0]
	}
	mean := sum / n
	sd := math.Sqrt(sum2/n - mean*mean)
	wantSD := m.SigmaEta / math.Sqrt(1-m.Phi*m.Phi)
	if math.Abs(mean-m.Mu) > 0.02 {
		t.Fatalf("stationary mean %v, want %v", mean, m.Mu)
	}
	if math.Abs(sd-wantSD) > 0.02 {
		t.Fatalf("stationary sd %v, want %v", sd, wantSD)
	}
}

func TestSimulatedScenarioDeterministicAndCached(t *testing.T) {
	s := NewSimulated(NewUNGM(), 42)
	x1 := make([]float64, 1)
	x2 := make([]float64, 1)
	s.TrueState(10, x1)
	s.TrueState(10, x2)
	if x1[0] != x2[0] {
		t.Fatal("TrueState not cached/deterministic")
	}
	// A fresh scenario with the same seed reproduces the same truth.
	s2 := NewSimulated(NewUNGM(), 42)
	s2.TrueState(10, x2)
	if x1[0] != x2[0] {
		t.Fatal("same-seed scenarios diverge")
	}
	// Different seed should differ.
	s3 := NewSimulated(NewUNGM(), 43)
	s3.TrueState(10, x2)
	if x1[0] == x2[0] {
		t.Fatal("different-seed scenarios identical")
	}
	// Out-of-order access works.
	s4 := NewSimulated(NewUNGM(), 42)
	s4.TrueState(3, x2)
	s4.TrueState(10, x2)
	if x1[0] != x2[0] {
		t.Fatal("out-of-order access changes truth")
	}
}

func TestUNGMZeroValueDefaults(t *testing.T) {
	// A zero-value UNGM must behave like NewUNGM (defaults kick in).
	var m UNGM
	dst := make([]float64, 1)
	ref := NewUNGM()
	dstRef := make([]float64, 1)
	m.StepMean(dst, []float64{2}, nil, 3)
	ref.StepMean(dstRef, []float64{2}, nil, 3)
	if dst[0] != dstRef[0] {
		t.Fatal("zero-value StepMean differs from default")
	}
	if m.LogLikelihood([]float64{1}, []float64{0.05}) != ref.LogLikelihood([]float64{1}, []float64{0.05}) {
		t.Fatal("zero-value likelihood differs from default")
	}
	r := rng.New(rng.NewPhilox(1))
	m.InitParticle(dst, r)
	if math.IsNaN(dst[0]) {
		t.Fatal("zero-value InitParticle NaN")
	}
}

func TestLinearizableCovariancesSPD(t *testing.T) {
	for _, lin := range []Linearizable{NewUNGM(), NewBearings()} {
		if _, err := lin.ProcessCov().Cholesky(); err != nil {
			t.Errorf("%s process covariance not SPD: %v", lin.Name(), err)
		}
		if _, err := lin.MeasureCov().Cholesky(); err != nil {
			t.Errorf("%s measurement covariance not SPD: %v", lin.Name(), err)
		}
	}
}

func TestBearingsStepJacobianMatchesNumeric(t *testing.T) {
	m := NewBearings()
	x := []float64{1, 2, 0.5, -0.3}
	jac := mat.NewMatrix(4, 4)
	m.StepJacobian(jac, x, nil, 0)
	num := mat.NewMatrix(4, 4)
	NumericalJacobian(num, func(dst, xx []float64) { m.StepMean(dst, xx, nil, 0) }, x)
	for i := range jac.Data {
		if math.Abs(jac.Data[i]-num.Data[i]) > 1e-6 {
			t.Fatalf("step jacobian[%d]: %v vs %v", i, jac.Data[i], num.Data[i])
		}
	}
}

func TestBearingsWrapResidual(t *testing.T) {
	m := NewBearings()
	res := []float64{3 * math.Pi, -3 * math.Pi}
	m.WrapResidual(res)
	for i, v := range res {
		if v > math.Pi || v <= -math.Pi {
			t.Fatalf("res[%d] = %v not wrapped", i, v)
		}
	}
}

func TestSimulatedScenarioAccessors(t *testing.T) {
	m := NewUNGM()
	s := NewSimulated(m, 1)
	if s.Model() != Model(m) {
		t.Fatal("Model accessor wrong")
	}
	s.Control(3, nil) // no-op, must not panic
}

func TestVehicleRouteModelAccessor(t *testing.T) {
	v := NewVehicle()
	r := NewVehicleRoute(v)
	if r.Model() != Model(v) {
		t.Fatal("route model accessor wrong")
	}
	r.Control(0, nil) // zero-length control, must not panic
}
