package model_test

import (
	"fmt"
	"math"
	"testing"

	"esthera/internal/model"
	"esthera/internal/model/arm"
	"esthera/internal/rng"
)

// scalarOnly hides any native VecModel implementation behind the plain
// Model interface, forcing Vectorize onto the generic per-lane adapter.
type scalarOnly struct{ model.Model }

// TestVecMatchesScalar drives every shipped VecModel (and the generic
// adapter) side by side with the scalar methods on identically seeded
// generators and requires bit-identical states, likelihoods, and — via a
// final paired draw — an identically positioned random stream. The span
// length is odd so the Box-Muller spare crosses the Init/Step boundaries.
func TestVecMatchesScalar(t *testing.T) {
	armM, err := arm.New(arm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	armSingle, err := arm.New(arm.Config{SinglePrecision: true})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		m    model.Model
	}{
		{"ungm", model.NewUNGM()},
		{"bearings", model.NewBearings()},
		{"arm", armM},
		{"arm-single", armSingle},
		{"adapter-bearings", scalarOnly{model.NewBearings()}},
		{"adapter-arm", scalarOnly{armM}},
	}
	rands := []struct {
		name string
		mk   func(seed uint64) *rng.Rand
	}{
		{"philox", func(seed uint64) *rng.Rand {
			return rng.New(rng.NewPhilox(seed))
		}},
		{"buffered", func(seed uint64) *rng.Rand {
			b := rng.NewBuffer(1<<12, rng.NewPhiloxStream(seed, 1))
			b.Refill()
			return rng.New(b)
		}},
	}
	for _, tc := range cases {
		for _, rc := range rands {
			t.Run(tc.name+"/"+rc.name, func(t *testing.T) {
				for _, seed := range []uint64{1, 2, 3} {
					runVecVsScalar(t, tc.m, seed, rc.mk)
				}
			})
		}
	}
}

func runVecVsScalar(t *testing.T, m model.Model, seed uint64, mk func(uint64) *rng.Rand) {
	t.Helper()
	const n = 33
	const steps = 4
	dim := m.StateDim()
	vm := model.Vectorize(m)
	rs := mk(seed)
	rv := mk(seed)

	u := make([]float64, m.ControlDim())
	for i := range u {
		u[i] = 0.01 * float64(i+1)
	}
	z := make([]float64, m.MeasurementDim())
	for i := range z {
		z[i] = 0.2*float64(i) - 0.3
	}

	rows := make([][]float64, n)
	next := make([][]float64, n)
	for i := range rows {
		rows[i] = make([]float64, dim)
		next[i] = make([]float64, dim)
	}
	cols := make([][]float64, dim)
	ncols := make([][]float64, dim)
	for c := range cols {
		cols[c] = make([]float64, n)
		ncols[c] = make([]float64, n)
	}

	compare := func(stage string) {
		t.Helper()
		for i := 0; i < n; i++ {
			for c := 0; c < dim; c++ {
				if math.Float64bits(rows[i][c]) != math.Float64bits(cols[c][i]) {
					t.Fatalf("seed=%d %s: row %d dim %d: scalar %v (%#x) vec %v (%#x)",
						seed, stage, i, c, rows[i][c], math.Float64bits(rows[i][c]),
						cols[c][i], math.Float64bits(cols[c][i]))
				}
			}
		}
	}

	for i := range rows {
		m.InitParticle(rows[i], rs)
	}
	vm.InitVec(cols, rv)
	compare("init")

	llS := make([]float64, n)
	llV := make([]float64, n)
	for k := 0; k < steps; k++ {
		for i := range rows {
			m.Step(next[i], rows[i], u, k, rs)
		}
		rows, next = next, rows
		vm.StepVec(ncols, cols, u, k, rv)
		cols, ncols = ncols, cols
		compare(fmt.Sprintf("step k=%d", k))

		for i := range rows {
			llS[i] = m.LogLikelihood(rows[i], z)
		}
		vm.LogLikelihoodVec(llV, cols, z)
		for i := 0; i < n; i++ {
			if math.Float64bits(llS[i]) != math.Float64bits(llV[i]) {
				t.Fatalf("seed=%d loglik k=%d row %d: scalar %v vec %v", seed, k, i, llS[i], llV[i])
			}
		}
	}

	// The vectorized path must leave the generator exactly where the
	// scalar path does, including the Box-Muller spare.
	if a, b := rs.NormFloat64(), rv.NormFloat64(); math.Float64bits(a) != math.Float64bits(b) {
		t.Fatalf("seed=%d: stream diverged after run: scalar %v vec %v", seed, a, b)
	}
	if a, b := rs.NormFloat64(), rv.NormFloat64(); math.Float64bits(a) != math.Float64bits(b) {
		t.Fatalf("seed=%d: spare diverged after run: scalar %v vec %v", seed, a, b)
	}
}
