// Package model defines the dynamical-system abstraction the filters
// estimate, and ships the paper-relevant benchmark systems:
//
//   - the N-joint robotic arm with camera (§VII-A) in the arm subpackage,
//   - UNGM, the univariate nonstationary growth model (the classic
//     academic non-linear benchmark of Gordon et al., of the kind the
//     first parallel-PF study used),
//   - 2-D bearings-only tracking with four state variables (the paper's
//     "small estimation problems with up to four state variables" that
//     reach kHz rates),
//   - a stochastic-volatility model (the econometrics application the
//     introduction cites).
//
// The paper's framework "separates generic particle filtering from
// model-specific routines. New dynamical system models can be easily
// added" — this interface is that separation.
package model

import (
	"math"

	"esthera/internal/mat"
	"esthera/internal/rng"
)

// Model is a state-space system with Markov dynamics and a stochastic
// measurement channel.
//
// All slice arguments are caller-allocated; implementations must not
// retain them.
type Model interface {
	// Name identifies the model in reports.
	Name() string
	// StateDim is the length of a state vector x.
	StateDim() int
	// MeasurementDim is the length of a measurement vector z.
	MeasurementDim() int
	// ControlDim is the length of a control vector u (0 if uncontrolled).
	ControlDim() int
	// InitParticle samples an initial particle from the prior p(x₀).
	InitParticle(x []float64, r *rng.Rand)
	// Step samples dst ~ p(x_k | x_{k-1}=src, u_k=u) at step index k.
	// dst and src must not alias.
	Step(dst, src, u []float64, k int, r *rng.Rand)
	// LogLikelihood returns log p(z | x).
	LogLikelihood(x, z []float64) float64
	// Measure samples a measurement z ~ p(z | x) (used to synthesize
	// observations from ground truth).
	Measure(z, x []float64, r *rng.Rand)
	// TrackedPosition projects a state onto the 2-D quantity of interest
	// whose estimation error the experiments report (for the arm: the
	// tracked object's position; 1-D models return (x, 0)).
	TrackedPosition(x []float64) (px, py float64)
}

// Linearizable is the optional contract the Kalman baselines need: the
// deterministic parts of the dynamics and measurement, their Jacobians,
// and the (additive, Gaussian) noise covariances.
type Linearizable interface {
	Model
	// StepMean writes E[x_k | x_{k-1}=src, u] into dst.
	StepMean(dst, src, u []float64, k int)
	// StepJacobian writes ∂StepMean/∂x at src into jac (n×n).
	StepJacobian(jac *mat.Matrix, src, u []float64, k int)
	// MeasureMean writes E[z | x] into z.
	MeasureMean(z, x []float64)
	// MeasureJacobian writes ∂MeasureMean/∂x at x into jac (m×n).
	MeasureJacobian(jac *mat.Matrix, x []float64)
	// ProcessCov returns the process-noise covariance (n×n).
	ProcessCov() *mat.Matrix
	// MeasureCov returns the measurement-noise covariance (m×m).
	MeasureCov() *mat.Matrix
}

// LogNormPDF returns log N(x; mean, sigma²) including the normalization
// constant, guarding sigma > 0.
func LogNormPDF(x, mean, sigma float64) float64 {
	d := (x - mean) / sigma
	return -0.5*d*d - math.Log(sigma) - 0.5*math.Log(2*math.Pi)
}

// NumericalJacobian fills jac (m×n) with the central-difference Jacobian
// of f at x, where f maps n-vectors to m-vectors via f(dst, x). It is the
// fallback used to make models without analytic measurement Jacobians
// (such as the robotic arm) usable by the EKF baseline.
func NumericalJacobian(jac *mat.Matrix, f func(dst, x []float64), x []float64) {
	m, n := jac.Rows, jac.Cols
	xp := append([]float64(nil), x...)
	fPlus := make([]float64, m)
	fMinus := make([]float64, m)
	for j := 0; j < n; j++ {
		h := 1e-6 * (1 + math.Abs(x[j]))
		xp[j] = x[j] + h
		f(fPlus, xp)
		xp[j] = x[j] - h
		f(fMinus, xp)
		xp[j] = x[j]
		inv := 1 / (2 * h)
		for i := 0; i < m; i++ {
			jac.Set(i, j, (fPlus[i]-fMinus[i])*inv)
		}
	}
}
