package arm

import (
	"math"

	"esthera/internal/model"
	"esthera/internal/rng"
)

// The vectorized methods below process whole row spans over SoA columns.
// Per-row draw order matches the scalar methods exactly: Step and
// InitParticle each consume StateDim normals per row (J joint draws, two
// position draws, two velocity draws — the draw index equals the state
// index), so one row-major Normals block replays the scalar stream and
// the columns can then be filled in any order.

// StepVec implements model.VecModel.
//
//esthera:hotpath noalloc bce
func (m *Model) StepVec(dst, src [][]float64, u []float64, _ int, r *rng.Rand) {
	j := m.cfg.Joints
	nd := j + 4
	n := len(dst[0])
	zs := r.Normals(nd * n)[: nd*n : nd*n]
	h := m.cfg.Hs
	sTheta := m.cfg.SigmaThetaRate * h
	for c := 0; c < j; c++ {
		ui := 0.0
		if c < len(u) {
			ui = u[c]
		}
		hui := h * ui
		d := dst[c][:n:n]
		s := src[c][:n]
		for i := range d {
			d[i] = s[i] + hui + sTheta*zs[i*nd+c]
		}
	}
	sp, sv := m.cfg.SigmaPos, m.cfg.SigmaVel
	dj, dj1 := dst[j][:n:n], dst[j+1][:n:n]
	dj2, dj3 := dst[j+2][:n:n], dst[j+3][:n:n]
	sj, sj1 := src[j][:n], src[j+1][:n]
	sj2, sj3 := src[j+2][:n], src[j+3][:n]
	for i := range dj {
		b := i * nd
		dj[i] = sj[i] + h*sj2[i] + sp*zs[b+j]
		dj1[i] = sj1[i] + h*sj3[i] + sp*zs[b+j+1]
		dj2[i] = sj2[i] + sv*zs[b+j+2]
		dj3[i] = sj3[i] + sv*zs[b+j+3]
	}
	if m.cfg.SinglePrecision {
		for c := 0; c < nd; c++ {
			d := dst[c][:n:n]
			for i := range d {
				d[i] = float64(float32(d[i]))
			}
		}
	}
}

// LogLikelihoodVec implements model.VecModel. The camera projection is
// inherently per-row (forward kinematics through transcendentals), so the
// win here is hoisting the channel-noise logarithms and skipping the
// per-particle interface dispatch; joint angles are gathered into a small
// stack buffer for CameraProject.
//
//esthera:hotpath noalloc bce
func (m *Model) LogLikelihoodVec(ll []float64, x [][]float64, z []float64) {
	j := m.cfg.Joints
	n := len(ll)
	out := ll[:n:n]
	var buf [16]float64
	theta := buf[:]
	if j > len(buf) {
		//esthera:allow noalloc cold fallback for arms beyond 16 joints; the stack buffer covers every shipped config
		theta = make([]float64, j)
	}
	theta = theta[:j]
	sc := m.cfg.SigmaCam
	st := m.cfg.SigmaThetaMeas
	logCam := math.Log(sc)
	logTheta := math.Log(st)
	halfLog2Pi := 0.5 * math.Log(2*math.Pi)
	xj, xj1 := x[j][:n], x[j+1][:n]
	z0, z1 := z[0], z[1]
	single := m.cfg.SinglePrecision
	for i := range out {
		for c := 0; c < j; c++ {
			theta[c] = x[c][i]
		}
		xC, yC := CameraProject(theta, m.linkLen, xj[i], xj1[i])
		if single {
			xC = float64(float32(xC))
			yC = float64(float32(yC))
		}
		d0 := (z0 - xC) / sc
		d1 := (z1 - yC) / sc
		v := (-0.5*d0*d0 - logCam - halfLog2Pi) + (-0.5*d1*d1 - logCam - halfLog2Pi)
		for c := 0; c < j; c++ {
			d := (z[2+c] - theta[c]) / st
			v += -0.5*d*d - logTheta - halfLog2Pi
		}
		if single {
			v = float64(float32(v))
		}
		out[i] = v
	}
}

// InitVec implements model.VecModel.
//
//esthera:hotpath bce
func (m *Model) InitVec(x [][]float64, r *rng.Rand) {
	mean := m.initMean()
	j := m.cfg.Joints
	nd := j + 4
	n := len(x[0])
	zs := r.Normals(nd * n)[: nd*n : nd*n]
	sigTheta := m.cfg.InitSigmaTheta
	for c := 0; c < j; c++ {
		mc := mean[c]
		col := x[c][:n:n]
		for i := range col {
			col[i] = mc + sigTheta*zs[i*nd+c]
		}
	}
	sig := [4]float64{m.cfg.InitSigmaPos, m.cfg.InitSigmaPos, m.cfg.InitSigmaVel, m.cfg.InitSigmaVel}
	for o := 0; o < 4; o++ {
		c := j + o
		mc := mean[c]
		s := sig[o]
		col := x[c][:n:n]
		for i := range col {
			col[i] = mc + s*zs[i*nd+c]
		}
	}
}

var _ model.VecModel = (*Model)(nil)
