package arm

import (
	"fmt"

	"esthera/internal/mat"
	"esthera/internal/model"
	"esthera/internal/rng"
)

// Config holds the arm model parameters. The defaults follow Table II of
// the paper; the noise magnitudes print illegibly in the available text
// (all as "N(0, 0.x)"), so the values below are the assumed magnitudes,
// recorded in EXPERIMENTS.md and chosen so that the qualitative behaviour
// of Figs. 6–9 reproduces (high-particle filters converge to the
// lemniscate, very small ones do not).
type Config struct {
	// Joints is the number of controllable angles including the base
	// rotation (Table II default: 5, giving state dimension 9).
	Joints int
	// ArmLength is the total arm length in meters (Table II: 1).
	ArmLength float64
	// Hs is the sampling time in seconds.
	Hs float64
	// SigmaThetaRate is the joint process noise in rad/s (applied as
	// SigmaThetaRate·Hs per step), Table II's w_θ.
	SigmaThetaRate float64
	// SigmaPos / SigmaVel are the object process noises per step (m, m/s).
	SigmaPos, SigmaVel float64
	// SigmaThetaMeas is the joint angle sensor noise (rad), Table II's ŵ_θ.
	SigmaThetaMeas float64
	// SigmaCam is the camera measurement noise (m), Table II's w_C.
	SigmaCam float64
	// InitMean is the prior mean state (length Joints+4); nil means zero
	// angles, object at (ArmLength, 0) at rest.
	InitMean []float64
	// InitSigmaTheta / InitSigmaPos / InitSigmaVel spread the prior.
	InitSigmaTheta, InitSigmaPos, InitSigmaVel float64
	// SinglePrecision rounds particle states and likelihood evaluations
	// through float32, emulating the paper's all-single-precision GPU
	// kernels (§VI: "we compared delivered estimates with those from our
	// double precision reference and found that it does not improve our
	// estimation accuracy by a meaningful amount"). Exposed as the
	// precision ablation.
	SinglePrecision bool
}

// DefaultConfig returns the Table II defaults (with the assumed noise
// magnitudes described above).
func DefaultConfig() Config {
	return Config{
		Joints:         5,
		ArmLength:      1,
		Hs:             0.05,
		SigmaThetaRate: 0.1,
		SigmaPos:       0.01,
		SigmaVel:       0.02,
		SigmaThetaMeas: 0.05,
		SigmaCam:       0.05,
		InitSigmaTheta: 0.2,
		InitSigmaPos:   0.3,
		InitSigmaVel:   0.1,
	}
}

// Model is the robotic-arm system. Create it with New.
type Model struct {
	cfg     Config
	linkLen float64
}

// New validates cfg (zero fields replaced by defaults) and returns the
// model.
func New(cfg Config) (*Model, error) {
	def := DefaultConfig()
	if cfg.Joints == 0 {
		cfg.Joints = def.Joints
	}
	if cfg.Joints < 1 {
		return nil, fmt.Errorf("arm: need at least 1 joint, got %d", cfg.Joints)
	}
	if cfg.ArmLength == 0 {
		cfg.ArmLength = def.ArmLength
	}
	if cfg.ArmLength <= 0 {
		return nil, fmt.Errorf("arm: non-positive arm length %v", cfg.ArmLength)
	}
	if cfg.Hs == 0 {
		cfg.Hs = def.Hs
	}
	if cfg.Hs <= 0 {
		return nil, fmt.Errorf("arm: non-positive sampling time %v", cfg.Hs)
	}
	fill := func(dst *float64, v float64) {
		if *dst == 0 {
			*dst = v
		}
	}
	fill(&cfg.SigmaThetaRate, def.SigmaThetaRate)
	fill(&cfg.SigmaPos, def.SigmaPos)
	fill(&cfg.SigmaVel, def.SigmaVel)
	fill(&cfg.SigmaThetaMeas, def.SigmaThetaMeas)
	fill(&cfg.SigmaCam, def.SigmaCam)
	fill(&cfg.InitSigmaTheta, def.InitSigmaTheta)
	fill(&cfg.InitSigmaPos, def.InitSigmaPos)
	fill(&cfg.InitSigmaVel, def.InitSigmaVel)
	m := &Model{cfg: cfg}
	links := cfg.Joints - 1
	if links < 1 {
		links = 1
	}
	m.linkLen = cfg.ArmLength / float64(links)
	if cfg.InitMean != nil && len(cfg.InitMean) != m.StateDim() {
		return nil, fmt.Errorf("arm: InitMean length %d, want %d", len(cfg.InitMean), m.StateDim())
	}
	return m, nil
}

// Config returns the (default-filled) configuration.
func (m *Model) Config() Config { return m.cfg }

// LinkLen returns the per-link length.
func (m *Model) LinkLen() float64 { return m.linkLen }

// Name implements model.Model.
func (m *Model) Name() string { return fmt.Sprintf("arm-%dj", m.cfg.Joints) }

// StateDim implements model.Model: J angles + (x, y, vx, vy).
func (m *Model) StateDim() int { return m.cfg.Joints + 4 }

// MeasurementDim implements model.Model: camera (2) + J angle sensors.
func (m *Model) MeasurementDim() int { return m.cfg.Joints + 2 }

// ControlDim implements model.Model: one angular-rate command per joint.
func (m *Model) ControlDim() int { return m.cfg.Joints }

// initMean returns the prior mean (default: zero angles, object at
// (ArmLength, 0) at rest).
func (m *Model) initMean() []float64 {
	if m.cfg.InitMean != nil {
		return m.cfg.InitMean
	}
	mean := make([]float64, m.StateDim())
	mean[m.cfg.Joints] = m.cfg.ArmLength
	return mean
}

// InitParticle implements model.Model.
func (m *Model) InitParticle(x []float64, r *rng.Rand) {
	mean := m.initMean()
	j := m.cfg.Joints
	for i := 0; i < j; i++ {
		x[i] = mean[i] + r.Normal(0, m.cfg.InitSigmaTheta)
	}
	x[j] = mean[j] + r.Normal(0, m.cfg.InitSigmaPos)
	x[j+1] = mean[j+1] + r.Normal(0, m.cfg.InitSigmaPos)
	x[j+2] = mean[j+2] + r.Normal(0, m.cfg.InitSigmaVel)
	x[j+3] = mean[j+3] + r.Normal(0, m.cfg.InitSigmaVel)
}

// StepMean implements model.Linearizable: the deterministic part of the
// single-integrator joint dynamics and double-integrator object dynamics
// of §VII-A.
func (m *Model) StepMean(dst, src, u []float64, _ int) {
	j := m.cfg.Joints
	h := m.cfg.Hs
	for i := 0; i < j; i++ {
		ui := 0.0
		if i < len(u) {
			ui = u[i]
		}
		dst[i] = src[i] + h*ui
	}
	dst[j] = src[j] + h*src[j+2]
	dst[j+1] = src[j+1] + h*src[j+3]
	dst[j+2] = src[j+2]
	dst[j+3] = src[j+3]
}

// Step implements model.Model.
func (m *Model) Step(dst, src, u []float64, k int, r *rng.Rand) {
	m.StepMean(dst, src, u, k)
	j := m.cfg.Joints
	sTheta := m.cfg.SigmaThetaRate * m.cfg.Hs
	for i := 0; i < j; i++ {
		dst[i] += r.Normal(0, sTheta)
	}
	dst[j] += r.Normal(0, m.cfg.SigmaPos)
	dst[j+1] += r.Normal(0, m.cfg.SigmaPos)
	dst[j+2] += r.Normal(0, m.cfg.SigmaVel)
	dst[j+3] += r.Normal(0, m.cfg.SigmaVel)
	if m.cfg.SinglePrecision {
		for i := range dst {
			dst[i] = float64(float32(dst[i]))
		}
	}
}

// MeasureMean implements model.Linearizable: z = (h(x), θ) without noise.
func (m *Model) MeasureMean(z, x []float64) {
	j := m.cfg.Joints
	xC, yC := CameraProject(x[:j], m.linkLen, x[j], x[j+1])
	z[0], z[1] = xC, yC
	copy(z[2:], x[:j])
}

// Measure implements model.Model.
func (m *Model) Measure(z, x []float64, r *rng.Rand) {
	m.MeasureMean(z, x)
	z[0] += r.Normal(0, m.cfg.SigmaCam)
	z[1] += r.Normal(0, m.cfg.SigmaCam)
	for i := 2; i < len(z); i++ {
		z[i] += r.Normal(0, m.cfg.SigmaThetaMeas)
	}
}

// LogLikelihood implements model.Model: independent Gaussian channels for
// the camera components and each joint sensor.
func (m *Model) LogLikelihood(x, z []float64) float64 {
	j := m.cfg.Joints
	xC, yC := CameraProject(x[:j], m.linkLen, x[j], x[j+1])
	if m.cfg.SinglePrecision {
		xC = float64(float32(xC))
		yC = float64(float32(yC))
	}
	ll := model.LogNormPDF(z[0], xC, m.cfg.SigmaCam) +
		model.LogNormPDF(z[1], yC, m.cfg.SigmaCam)
	for i := 0; i < j; i++ {
		ll += model.LogNormPDF(z[2+i], x[i], m.cfg.SigmaThetaMeas)
	}
	if m.cfg.SinglePrecision {
		ll = float64(float32(ll))
	}
	return ll
}

// TrackedPosition implements model.Model: the tracked object's (x, y).
func (m *Model) TrackedPosition(x []float64) (float64, float64) {
	j := m.cfg.Joints
	return x[j], x[j+1]
}

// StepJacobian implements model.Linearizable (the dynamics are linear).
func (m *Model) StepJacobian(jac *mat.Matrix, _, _ []float64, _ int) {
	n := m.StateDim()
	j := m.cfg.Joints
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			jac.Set(a, b, 0)
		}
		jac.Set(a, a, 1)
	}
	jac.Set(j, j+2, m.cfg.Hs)
	jac.Set(j+1, j+3, m.cfg.Hs)
}

// MeasureJacobian implements model.Linearizable via central differences
// (the camera channel has no convenient closed-form Jacobian; the paper
// never needs one, but the EKF baseline does).
func (m *Model) MeasureJacobian(jac *mat.Matrix, x []float64) {
	model.NumericalJacobian(jac, m.MeasureMean, x)
}

// ProcessCov implements model.Linearizable.
func (m *Model) ProcessCov() *mat.Matrix {
	n := m.StateDim()
	j := m.cfg.Joints
	d := make([]float64, n)
	st := m.cfg.SigmaThetaRate * m.cfg.Hs
	for i := 0; i < j; i++ {
		d[i] = st * st
	}
	d[j] = m.cfg.SigmaPos * m.cfg.SigmaPos
	d[j+1] = d[j]
	d[j+2] = m.cfg.SigmaVel * m.cfg.SigmaVel
	d[j+3] = d[j+2]
	return mat.Diag(d)
}

// MeasureCov implements model.Linearizable.
func (m *Model) MeasureCov() *mat.Matrix {
	d := make([]float64, m.MeasurementDim())
	d[0] = m.cfg.SigmaCam * m.cfg.SigmaCam
	d[1] = d[0]
	for i := 2; i < len(d); i++ {
		d[i] = m.cfg.SigmaThetaMeas * m.cfg.SigmaThetaMeas
	}
	return mat.Diag(d)
}

var _ model.Linearizable = (*Model)(nil)
