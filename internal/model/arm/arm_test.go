package arm

import (
	"math"
	"testing"

	"esthera/internal/mat"
	"esthera/internal/model"
	"esthera/internal/rng"
)

func defaultModel(t *testing.T) *Model {
	t.Helper()
	m, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestDefaultDimensionsMatchTableII(t *testing.T) {
	m := defaultModel(t)
	if m.StateDim() != 9 {
		t.Fatalf("state dim = %d, want 9 (Table II)", m.StateDim())
	}
	if m.Config().Joints != 5 {
		t.Fatalf("joints = %d, want 5", m.Config().Joints)
	}
	if m.MeasurementDim() != 7 {
		t.Fatalf("measurement dim = %d, want 7 (camera 2 + 5 sensors)", m.MeasurementDim())
	}
	if m.ControlDim() != 5 {
		t.Fatalf("control dim = %d, want 5", m.ControlDim())
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Joints: -1}); err == nil {
		t.Fatal("negative joints must error")
	}
	if _, err := New(Config{ArmLength: -1}); err == nil {
		t.Fatal("negative arm length must error")
	}
	if _, err := New(Config{Hs: -0.1}); err == nil {
		t.Fatal("negative sampling time must error")
	}
	if _, err := New(Config{InitMean: make([]float64, 3)}); err == nil {
		t.Fatal("wrong InitMean length must error")
	}
}

func TestCameraPoseOrthonormal(t *testing.T) {
	r := rng.New(rng.NewPhilox(1))
	for trial := 0; trial < 200; trial++ {
		nj := 1 + r.Intn(8)
		theta := make([]float64, nj)
		for i := range theta {
			theta[i] = (r.Float64() - 0.5) * 2 * math.Pi
		}
		_, xc, yc, zc := CameraPose(theta, 0.25)
		checkUnit := func(v Vec3, name string) {
			if math.Abs(v.Dot(v)-1) > 1e-9 {
				t.Fatalf("trial %d: %s not unit: %v", trial, name, v)
			}
		}
		checkUnit(xc, "xc")
		checkUnit(yc, "yc")
		checkUnit(zc, "zc")
		if math.Abs(xc.Dot(yc)) > 1e-9 || math.Abs(xc.Dot(zc)) > 1e-9 || math.Abs(yc.Dot(zc)) > 1e-9 {
			t.Fatalf("trial %d: camera axes not orthogonal", trial)
		}
	}
}

func TestCameraPoseStraightArm(t *testing.T) {
	// All angles zero: arm stretched along +x, camera at (L, 0, 0),
	// looking along +x.
	theta := make([]float64, 5)
	pos, xc, _, _ := CameraPose(theta, 0.25)
	if math.Abs(pos[0]-1.0) > 1e-12 || math.Abs(pos[1]) > 1e-12 || math.Abs(pos[2]) > 1e-12 {
		t.Fatalf("straight-arm camera at %v, want (1,0,0)", pos)
	}
	if math.Abs(xc[0]-1) > 1e-12 {
		t.Fatalf("straight-arm view direction %v, want +x", xc)
	}
}

func TestCameraPoseBaseRotation(t *testing.T) {
	// Base rotated 90°: camera moves to +y.
	theta := make([]float64, 5)
	theta[0] = math.Pi / 2
	pos, _, _, _ := CameraPose(theta, 0.25)
	if math.Abs(pos[0]) > 1e-9 || math.Abs(pos[1]-1.0) > 1e-9 {
		t.Fatalf("rotated-base camera at %v, want (0,1,0)", pos)
	}
}

func TestCameraPoseVerticalFold(t *testing.T) {
	// First pitch joint at 90°: the whole arm points up.
	theta := make([]float64, 3)
	theta[1] = math.Pi / 2
	pos, xc, _, _ := CameraPose(theta, 0.5)
	if math.Abs(pos[2]-1.0) > 1e-9 || math.Abs(pos[0]) > 1e-9 {
		t.Fatalf("vertical arm camera at %v, want (0,0,1)", pos)
	}
	if math.Abs(xc[2]-1) > 1e-9 {
		t.Fatalf("vertical arm view %v, want +z", xc)
	}
}

func TestCameraProjectIsRigid(t *testing.T) {
	// Distances are preserved: |h(x; p1) - h(x; p2)| <= |p1 - p2| with
	// equality when both objects are in the camera's x-y plane... but in
	// general projection loses the lateral (zc) component, so the camera-
	// frame distance never exceeds the world distance.
	r := rng.New(rng.NewPhilox(3))
	theta := make([]float64, 5)
	for trial := 0; trial < 100; trial++ {
		for i := range theta {
			theta[i] = (r.Float64() - 0.5) * 3
		}
		ox1, oy1 := r.Float64()*2-1, r.Float64()*2-1
		ox2, oy2 := r.Float64()*2-1, r.Float64()*2-1
		x1, y1 := CameraProject(theta, 0.25, ox1, oy1)
		x2, y2 := CameraProject(theta, 0.25, ox2, oy2)
		dCam := math.Hypot(x2-x1, y2-y1)
		dWorld := math.Hypot(ox2-ox1, oy2-oy1)
		if dCam > dWorld+1e-9 {
			t.Fatalf("trial %d: camera-frame distance %v exceeds world distance %v", trial, dCam, dWorld)
		}
	}
}

func TestModelContract(t *testing.T) {
	m := defaultModel(t)
	r := rng.New(rng.NewPhilox(4))
	x := make([]float64, m.StateDim())
	m.InitParticle(x, r)
	u := make([]float64, m.ControlDim())
	dst := make([]float64, m.StateDim())
	m.Step(dst, x, u, 1, r)
	z := make([]float64, m.MeasurementDim())
	m.Measure(z, dst, r)
	ll := m.LogLikelihood(dst, z)
	if math.IsNaN(ll) || math.IsInf(ll, 1) {
		t.Fatalf("log-likelihood = %v", ll)
	}
	// The generating state should beat a translated one.
	off := append([]float64(nil), dst...)
	off[m.Config().Joints] += 3
	if m.LogLikelihood(off, z) >= ll {
		t.Fatal("offset state at least as likely as generating state")
	}
	px, py := m.TrackedPosition(dst)
	if px != dst[5] || py != dst[6] {
		t.Fatalf("TrackedPosition = (%v,%v), want state[5:7]", px, py)
	}
}

func TestStepMeanDeterministicPart(t *testing.T) {
	m := defaultModel(t)
	src := make([]float64, m.StateDim())
	src[5] = 0.3  // x
	src[7] = 1.0  // vx
	src[8] = -2.0 // vy
	u := []float64{1, 0, 0, 0, 0}
	dst := make([]float64, m.StateDim())
	m.StepMean(dst, src, u, 0)
	h := m.Config().Hs
	if math.Abs(dst[0]-h) > 1e-12 {
		t.Fatalf("joint 0 = %v, want %v", dst[0], h)
	}
	if math.Abs(dst[5]-(0.3+h*1.0)) > 1e-12 {
		t.Fatalf("x = %v, want %v", dst[5], 0.3+h)
	}
	if math.Abs(dst[6]-(-2.0*h)) > 1e-12 {
		t.Fatalf("y = %v, want %v", dst[6], -2*h)
	}
	if dst[7] != 1.0 || dst[8] != -2.0 {
		t.Fatal("velocities must be preserved by the mean dynamics")
	}
}

func TestJacobiansConsistent(t *testing.T) {
	m := defaultModel(t)
	r := rng.New(rng.NewPhilox(6))
	x := make([]float64, m.StateDim())
	m.InitParticle(x, r)
	u := make([]float64, m.ControlDim())

	jac := mat.NewMatrix(m.StateDim(), m.StateDim())
	m.StepJacobian(jac, x, u, 0)
	num := mat.NewMatrix(m.StateDim(), m.StateDim())
	model.NumericalJacobian(num, func(dst, xx []float64) { m.StepMean(dst, xx, u, 0) }, x)
	for i := range jac.Data {
		if math.Abs(jac.Data[i]-num.Data[i]) > 1e-5 {
			t.Fatalf("step jacobian[%d]: %v vs numeric %v", i, jac.Data[i], num.Data[i])
		}
	}

	mj := mat.NewMatrix(m.MeasurementDim(), m.StateDim())
	m.MeasureJacobian(mj, x)
	// Angle-sensor rows are exact: ∂θ̂_i/∂θ_i = 1.
	for i := 0; i < m.Config().Joints; i++ {
		if math.Abs(mj.At(2+i, i)-1) > 1e-5 {
			t.Fatalf("sensor jacobian (%d,%d) = %v, want 1", 2+i, i, mj.At(2+i, i))
		}
	}
}

func TestCovariancesSPD(t *testing.T) {
	m := defaultModel(t)
	if _, err := m.ProcessCov().Cholesky(); err != nil {
		t.Fatalf("process covariance not SPD: %v", err)
	}
	if _, err := m.MeasureCov().Cholesky(); err != nil {
		t.Fatalf("measurement covariance not SPD: %v", err)
	}
}

func TestLemniscateGeometry(t *testing.T) {
	l := DefaultLemniscate()
	// s=0: rightmost point (A, 0).
	x, y := l.At(0)
	if math.Abs(x-l.A) > 1e-12 || math.Abs(y) > 1e-12 {
		t.Fatalf("lemniscate start (%v,%v), want (%v,0)", x, y, l.A)
	}
	// "Heading up from the right side": y increases just after s=0.
	_, y2 := l.At(0.05)
	if y2 <= 0 {
		t.Fatalf("path heads down from the start: y(0.05) = %v", y2)
	}
	// Closed curve: period 2π.
	x3, y3 := l.At(2 * math.Pi)
	if math.Abs(x3-x) > 1e-9 || math.Abs(y3-y) > 1e-9 {
		t.Fatal("lemniscate not closed")
	}
	// Symmetric figure: the center is crossed.
	xm, ym := l.At(math.Pi / 2)
	if math.Abs(xm) > 1e-9 || math.Abs(ym) > 1e-9 {
		t.Fatalf("center crossing at (%v,%v), want (0,0)", xm, ym)
	}
	// Pos() wraps the parameterization.
	px, py := l.Pos(l.Period)
	if math.Abs(px-x) > 1e-9 || math.Abs(py-y) > 1e-9 {
		t.Fatal("Pos(Period) != Pos(0)")
	}
}

func TestLemniscateVelocityConsistent(t *testing.T) {
	l := DefaultLemniscate()
	hs := 0.05
	// The analytic velocity must match the finite difference of Pos.
	for _, k := range []int{0, 17, 50, 133} {
		vx, vy := l.Vel(k, hs)
		x1, y1 := l.Pos(k - 1)
		x2, y2 := l.Pos(k + 1)
		fdx := (x2 - x1) / (2 * hs)
		fdy := (y2 - y1) / (2 * hs)
		if math.Abs(vx-fdx) > 0.05*(1+math.Abs(fdx)) || math.Abs(vy-fdy) > 0.05*(1+math.Abs(fdy)) {
			t.Fatalf("k=%d: velocity (%v,%v) vs finite diff (%v,%v)", k, vx, vy, fdx, fdy)
		}
	}
}

func TestScenarioTruth(t *testing.T) {
	m, sc, err := NewScenario(Config{}, DefaultLemniscate())
	if err != nil {
		t.Fatal(err)
	}
	if sc.Model() != model.Model(m) {
		t.Fatal("scenario model mismatch")
	}
	x := make([]float64, m.StateDim())
	sc.TrueState(0, x)
	// Object starts at the lemniscate start, joints at zero.
	if math.Abs(x[5]-0.6) > 1e-9 || math.Abs(x[6]) > 1e-9 {
		t.Fatalf("truth object at (%v,%v), want (0.6,0)", x[5], x[6])
	}
	for i := 0; i < 5; i++ {
		if x[i] != 0 {
			t.Fatalf("truth joint %d = %v at k=0, want 0", i, x[i])
		}
	}
	// Angles follow the integrated control: check against explicit
	// numerical integration.
	u := make([]float64, m.ControlDim())
	angles := make([]float64, m.ControlDim())
	for k := 1; k <= 40; k++ {
		sc.Control(k, u)
		for i := range angles {
			angles[i] += m.Config().Hs * u[i]
		}
	}
	sc.TrueState(40, x)
	for i := range angles {
		if math.Abs(x[i]-angles[i]) > 1e-9 {
			t.Fatalf("closed-form angle %d = %v, numeric %v", i, x[i], angles[i])
		}
	}
	// Prior is offset from truth (object guessed at the center).
	mean := m.Config().InitMean
	if mean == nil || mean[5] != 0 || mean[6] != 0 {
		t.Fatalf("scenario prior mean = %v, want object at center", mean)
	}
}

func TestLikelihoodPeaksNearTruth(t *testing.T) {
	// Sanity for the whole measurement pipeline: among candidate object
	// positions, the true one has the highest likelihood on average.
	m, sc, err := NewScenario(Config{}, DefaultLemniscate())
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(rng.NewPhilox(10))
	truth := make([]float64, m.StateDim())
	z := make([]float64, m.MeasurementDim())
	wins := 0
	const trials = 200
	for trial := 0; trial < trials; trial++ {
		sc.TrueState(trial%100, truth)
		m.Measure(z, truth, r)
		llTrue := m.LogLikelihood(truth, z)
		cand := append([]float64(nil), truth...)
		cand[5] += 0.4
		cand[6] -= 0.4
		if llTrue > m.LogLikelihood(cand, z) {
			wins++
		}
	}
	if wins < trials*3/4 {
		t.Fatalf("truth beat a 0.57m-offset candidate only %d/%d times", wins, trials)
	}
}
