package arm

import (
	"math"

	"esthera/internal/model"
)

// Lemniscate is the figure-eight ground-truth path of §VIII-A (Fig. 8): a
// lemniscate of Bernoulli of half-width A, traversed once every Period
// steps, "starting by heading up from the right side".
type Lemniscate struct {
	// A is the half-width in meters (default 0.6 — inside the reach of a
	// 1 m arm).
	A float64
	// Period is the number of steps per full traversal (default 200).
	Period int
	// CenterX, CenterY offset the figure in the plane.
	CenterX, CenterY float64
}

// DefaultLemniscate returns the default path.
func DefaultLemniscate() Lemniscate { return Lemniscate{A: 0.6, Period: 200} }

// At returns the position at parameter s (radians along the curve).
func (l Lemniscate) At(s float64) (x, y float64) {
	d := 1 + math.Sin(s)*math.Sin(s)
	x = l.CenterX + l.A*math.Cos(s)/d
	y = l.CenterY + l.A*math.Sin(s)*math.Cos(s)/d
	return
}

// Pos returns the position at integer step k.
func (l Lemniscate) Pos(k int) (x, y float64) {
	return l.At(2 * math.Pi * float64(k) / float64(l.period()))
}

// Vel returns the velocity (m/s) at step k for sampling time hs, from the
// analytic curve derivative.
func (l Lemniscate) Vel(k int, hs float64) (vx, vy float64) {
	s := 2 * math.Pi * float64(k) / float64(l.period())
	const ds = 1e-6
	x1, y1 := l.At(s - ds)
	x2, y2 := l.At(s + ds)
	rate := 2 * math.Pi / (float64(l.period()) * hs) // ds/dt
	return (x2 - x1) / (2 * ds) * rate, (y2 - y1) / (2 * ds) * rate
}

func (l Lemniscate) period() int {
	if l.Period <= 0 {
		return 200
	}
	return l.Period
}

// Scenario is the arm benchmark scenario: the object follows the
// lemniscate exactly while the joints sweep a smooth deterministic
// profile; measurements are synthesized from this truth with the model's
// noise. It implements model.Scenario.
type Scenario struct {
	m    *Model
	path Lemniscate
	// uAmp is the joint-rate command amplitude (rad/s).
	uAmp float64
}

// NewScenario builds the scenario and, unless cfg.InitMean was set,
// points the model's prior at a deliberately offset initial guess (the
// object guessed at the lemniscate center — "off the ground truth", as in
// Fig. 8) so convergence is non-trivial.
func NewScenario(cfg Config, path Lemniscate) (*Model, *Scenario, error) {
	probe, err := New(cfg)
	if err != nil {
		return nil, nil, err
	}
	cfg = probe.Config()
	if cfg.InitMean == nil {
		mean := make([]float64, probe.StateDim())
		j := cfg.Joints
		mean[j] = path.CenterX
		mean[j+1] = path.CenterY
		cfg.InitMean = mean
	}
	m, err := New(cfg)
	if err != nil {
		return nil, nil, err
	}
	// Joint-rate amplitude: kept small enough that the cumulative pitch
	// stays well below 90°, where the camera would look straight down at
	// the plane and lose observability of one object coordinate.
	return m, &Scenario{m: m, path: path, uAmp: 0.08}, nil
}

// Model implements model.Scenario.
func (s *Scenario) Model() model.Model { return s.m }

// Control implements model.Scenario: a smooth, phase-shifted sweep per
// joint.
func (s *Scenario) Control(k int, u []float64) {
	period := float64(s.path.period())
	for i := range u {
		u[i] = s.uAmp * math.Cos(2*math.Pi*float64(k)/period+float64(i))
	}
}

// trueAngles returns the deterministic joint angles at step k (the
// integral of the control profile, computable in closed form; we
// integrate numerically once and cache via the closed form below).
func (s *Scenario) trueAngle(i, k int) float64 {
	// θ_i(k) = Σ_{j=1..k} hs·u_i(j); closed form of the cosine sum.
	period := float64(s.path.period())
	w := 2 * math.Pi / period
	phase := float64(i)
	// Σ_{j=1..k} cos(w·j + φ) = [sin(w·k + φ + w/2) - sin(φ + w/2)] / (2 sin(w/2)).
	if k == 0 {
		return 0
	}
	num := math.Sin(w*float64(k)+phase+w/2) - math.Sin(phase+w/2)
	return s.uAmp * s.m.cfg.Hs * num / (2 * math.Sin(w/2))
}

// TrueState implements model.Scenario.
func (s *Scenario) TrueState(k int, x []float64) {
	j := s.m.cfg.Joints
	for i := 0; i < j; i++ {
		x[i] = s.trueAngle(i, k)
	}
	x[j], x[j+1] = s.path.Pos(k)
	x[j+2], x[j+3] = s.path.Vel(k, s.m.cfg.Hs)
}

var _ model.Scenario = (*Scenario)(nil)
