// Package arm implements the paper's robotic-arm tracking application
// (§VII-A): an industrial arm with N independently controlled joints —
// one rotational degree of freedom at the base plus planar pitch joints —
// carrying a camera at the end-effector that observes an object moving on
// a fixed x–y plane. Joint angle sensors and the camera provide the
// measurement vector; the camera equation is the "highly non-linear
// rotation-translation function" h(x) that motivates particle filtering.
//
// State:        x = (θ₀, …, θ_{J-1}, x, y, vx, vy), dimension J+4
// Measurement:  z = (x_C, y_C, θ̂₀, …, θ̂_{J-1}),    dimension J+2
//
// With the paper's default of 5 joints the state dimension is 9, matching
// Table II.
package arm

import "math"

// Vec3 is a 3-D vector.
type Vec3 [3]float64

// Sub returns v - o.
func (v Vec3) Sub(o Vec3) Vec3 { return Vec3{v[0] - o[0], v[1] - o[1], v[2] - o[2]} }

// Dot returns the dot product.
func (v Vec3) Dot(o Vec3) float64 { return v[0]*o[0] + v[1]*o[1] + v[2]*o[2] }

// CameraPose computes the camera (end-effector) world position and
// orientation from the joint angles via the forward-kinematic chain:
// theta[0] is the base yaw about the world z-axis; theta[1:] are pitch
// joints in the arm's vertical plane, each followed by a link of length
// linkLen. The camera frame is returned as three orthonormal world-space
// axes: xc along the final link direction, yc the in-plane "up", zc the
// lateral axis.
func CameraPose(theta []float64, linkLen float64) (pos Vec3, xc, yc, zc Vec3) {
	yaw := theta[0]
	cy, sy := math.Cos(yaw), math.Sin(yaw)
	// Accumulate the chain in the vertical plane (radial r, height z).
	r, z := 0.0, 0.0
	pitch := 0.0
	for _, t := range theta[1:] {
		pitch += t
		r += linkLen * math.Cos(pitch)
		z += linkLen * math.Sin(pitch)
	}
	if len(theta) == 1 {
		// Degenerate single-joint arm: a stub of one link pointing
		// horizontally, so the camera still has a well-defined pose.
		r = linkLen
	}
	pos = Vec3{r * cy, r * sy, z}
	cp, sp := math.Cos(pitch), math.Sin(pitch)
	xc = Vec3{cp * cy, cp * sy, sp}
	yc = Vec3{-sp * cy, -sp * sy, cp}
	zc = Vec3{sy, -cy, 0}
	return pos, xc, yc, zc
}

// CameraProject returns the tracked object's position in the camera
// frame: the object sits at world (ox, oy, 0) and the returned (xC, yC)
// are the components of the camera-relative vector along the camera's
// forward (xc) and lateral (zc) axes — the two directions that span the
// observed plane, i.e. the image coordinates of an end-effector camera
// looking down at the working plane (its optical axis is yc). This is
// the paper's measurement function h(x) of Eq. (1): a pure
// rotation-translation of the object position into the camera's moving
// frame. Observability of the plane degrades only when the cumulative
// pitch approaches ±90° (the camera edge-on to the plane).
func CameraProject(theta []float64, linkLen, ox, oy float64) (xC, yC float64) {
	pos, xc, _, zc := CameraPose(theta, linkLen)
	v := Vec3{ox, oy, 0}.Sub(pos)
	return v.Dot(xc), v.Dot(zc)
}
