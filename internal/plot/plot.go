// Package plot renders simple ASCII scatter/line charts for the cmd
// tools, so figure-class outputs (the Fig. 8 trajectory, error curves)
// can be eyeballed directly in a terminal without external tooling.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one plotted dataset.
type Series struct {
	Name  string
	Glyph rune
	XS    []float64
	YS    []float64
	// Connect draws line segments between consecutive points.
	Connect bool
}

// Canvas is a fixed-size character grid with a data-space viewport.
type Canvas struct {
	w, h                   int
	grid                   []rune
	xmin, xmax, ymin, ymax float64
	ranged                 bool
}

// New returns an empty canvas of w×h character cells (minimum 8×4).
func New(w, h int) *Canvas {
	if w < 8 {
		w = 8
	}
	if h < 4 {
		h = 4
	}
	c := &Canvas{w: w, h: h, grid: make([]rune, w*h)}
	for i := range c.grid {
		c.grid[i] = ' '
	}
	return c
}

// SetRange fixes the data-space viewport explicitly.
func (c *Canvas) SetRange(xmin, xmax, ymin, ymax float64) {
	c.xmin, c.xmax, c.ymin, c.ymax = xmin, xmax, ymin, ymax
	c.ranged = true
}

// AutoRange fits the viewport to the given series with a 5% margin.
func (c *Canvas) AutoRange(series ...Series) {
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i := range s.XS {
			x, y := s.XS[i], s.YS[i]
			if math.IsNaN(x) || math.IsNaN(y) {
				continue
			}
			xmin = math.Min(xmin, x)
			xmax = math.Max(xmax, x)
			ymin = math.Min(ymin, y)
			ymax = math.Max(ymax, y)
		}
	}
	if math.IsInf(xmin, 1) { // no finite points
		xmin, xmax, ymin, ymax = 0, 1, 0, 1
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	mx, my := 0.05*(xmax-xmin), 0.05*(ymax-ymin)
	c.SetRange(xmin-mx, xmax+mx, ymin-my, ymax+my)
}

// cell maps data coordinates to a grid index (-1 if outside).
func (c *Canvas) cell(x, y float64) int {
	if !c.ranged || math.IsNaN(x) || math.IsNaN(y) {
		return -1
	}
	fx := (x - c.xmin) / (c.xmax - c.xmin)
	fy := (y - c.ymin) / (c.ymax - c.ymin)
	if fx < 0 || fx > 1 || fy < 0 || fy > 1 {
		return -1
	}
	col := int(fx * float64(c.w-1))
	row := c.h - 1 - int(fy*float64(c.h-1))
	return row*c.w + col
}

// Plot draws a series (auto-ranging first if no range is set).
func (c *Canvas) Plot(s Series) {
	if !c.ranged {
		c.AutoRange(s)
	}
	glyph := s.Glyph
	if glyph == 0 {
		glyph = '*'
	}
	prev := -1
	var px, py float64
	for i := range s.XS {
		x, y := s.XS[i], s.YS[i]
		idx := c.cell(x, y)
		if idx >= 0 {
			c.grid[idx] = glyph
		}
		if s.Connect && prev >= 0 && idx >= 0 {
			c.segment(px, py, x, y, glyph)
		}
		if idx >= 0 {
			prev = idx
			px, py = x, y
		}
	}
}

// segment rasterizes a straight line between two data points.
func (c *Canvas) segment(x0, y0, x1, y1 float64, glyph rune) {
	steps := c.w + c.h
	for i := 0; i <= steps; i++ {
		t := float64(i) / float64(steps)
		if idx := c.cell(x0+(x1-x0)*t, y0+(y1-y0)*t); idx >= 0 {
			c.grid[idx] = glyph
		}
	}
}

// String renders the canvas with a frame and axis labels.
func (c *Canvas) String() string {
	var b strings.Builder
	b.WriteString("+" + strings.Repeat("-", c.w) + "+\n")
	for row := 0; row < c.h; row++ {
		b.WriteString("|")
		b.WriteString(string(c.grid[row*c.w : (row+1)*c.w]))
		b.WriteString("|\n")
	}
	b.WriteString("+" + strings.Repeat("-", c.w) + "+\n")
	fmt.Fprintf(&b, "x: [%.3g, %.3g]  y: [%.3g, %.3g]\n", c.xmin, c.xmax, c.ymin, c.ymax)
	return b.String()
}

// Render is the one-call API: plots every series on a shared auto-ranged
// canvas, prefixed by a title and a glyph legend.
func Render(title string, w, h int, series ...Series) string {
	c := New(w, h)
	c.AutoRange(series...)
	var legend []string
	for _, s := range series {
		c.Plot(s)
		glyph := s.Glyph
		if glyph == 0 {
			glyph = '*'
		}
		legend = append(legend, fmt.Sprintf("%c %s", glyph, s.Name))
	}
	return title + "\n" + c.String() + strings.Join(legend, "   ") + "\n"
}
