package plot

import (
	"math"
	"strings"
	"testing"
)

func TestRenderContainsGlyphsAndLegend(t *testing.T) {
	out := Render("demo", 40, 10,
		Series{Name: "a", Glyph: 'o', XS: []float64{0, 1, 2}, YS: []float64{0, 1, 0}},
		Series{Name: "b", Glyph: '#', XS: []float64{0, 2}, YS: []float64{1, 1}},
	)
	for _, want := range []string{"demo", "o a", "# b", "o", "#", "x: ["} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestCellMapping(t *testing.T) {
	c := New(10, 10)
	c.SetRange(0, 1, 0, 1)
	// Corners: bottom-left at last row/first col; top-right first row/last col.
	if got := c.cell(0, 0); got != (c.h-1)*c.w {
		t.Fatalf("bottom-left cell %d", got)
	}
	if got := c.cell(1, 1); got != c.w-1 {
		t.Fatalf("top-right cell %d", got)
	}
	if c.cell(2, 0) != -1 || c.cell(0, -1) != -1 {
		t.Fatal("out-of-range points must map to -1")
	}
	if c.cell(math.NaN(), 0) != -1 {
		t.Fatal("NaN must map to -1")
	}
}

func TestAutoRangeDegenerate(t *testing.T) {
	c := New(20, 5)
	// Single point and NaNs: must not panic or produce a zero-width range.
	c.AutoRange(Series{XS: []float64{3, math.NaN()}, YS: []float64{4, math.NaN()}})
	if !(c.xmax > c.xmin) || !(c.ymax > c.ymin) {
		t.Fatalf("degenerate range: [%v,%v]x[%v,%v]", c.xmin, c.xmax, c.ymin, c.ymax)
	}
	// Empty series.
	c2 := New(20, 5)
	c2.AutoRange(Series{})
	if !(c2.xmax > c2.xmin) {
		t.Fatal("empty-series range degenerate")
	}
}

func TestConnectDrawsBetweenPoints(t *testing.T) {
	// A connected horizontal line must fill cells between the endpoints.
	a := New(21, 5)
	a.SetRange(0, 1, 0, 1)
	a.Plot(Series{Glyph: '-', Connect: true, XS: []float64{0, 1}, YS: []float64{0.5, 0.5}})
	line := a.String()
	if strings.Count(line, "-") < 15 {
		t.Fatalf("connected line too sparse:\n%s", line)
	}
	// Without Connect only the two endpoints appear.
	b := New(21, 5)
	b.SetRange(0, 1, 0, 1)
	b.Plot(Series{Glyph: '-', XS: []float64{0, 1}, YS: []float64{0.5, 0.5}})
	if strings.Count(b.String(), "-") > 4 { // frame dashes excluded by narrow count? use contains row
		// The frame contributes dashes; compare against the connected count.
		if strings.Count(b.String(), "-") >= strings.Count(line, "-") {
			t.Fatal("unconnected plot as dense as connected one")
		}
	}
}

func TestMinimumCanvasSize(t *testing.T) {
	c := New(1, 1)
	if c.w < 8 || c.h < 4 {
		t.Fatalf("minimum size not enforced: %dx%d", c.w, c.h)
	}
}
