// Package scan provides prefix-sum and reduction primitives in both
// sequential and barrier-phased data-parallel form.
//
// The paper's RWS resampling kernel initializes by computing an array of
// cumulative weight sums with a work-efficient parallel prefix sum
// ("we use a bank-conflict avoiding implementation", §VI-F, citing Harris
// et al., GPU Gems 3 ch. 39), and the global-estimate kernel is a parallel
// reduction (§VI-D). Both are implemented here once against device.Ctx so
// the sequential reference filters and the device kernels share code.
package scan

import "esthera/internal/device"

// ExclusiveSum writes into dst the exclusive prefix sums of src:
// dst[i] = src[0] + ... + src[i-1], dst[0] = 0. dst and src may alias.
func ExclusiveSum(dst, src []float64) {
	sum := 0.0
	for i, v := range src {
		dst[i] = sum
		sum += v
	}
}

// InclusiveSum writes into dst the inclusive prefix sums of src:
// dst[i] = src[0] + ... + src[i]. dst and src may alias.
func InclusiveSum(dst, src []float64) {
	sum := 0.0
	for i, v := range src {
		sum += v
		dst[i] = sum
	}
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, v := range xs {
		s += v
	}
	return s
}

// nextPow2 returns the smallest power of two >= n (n >= 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Exclusive performs an in-place exclusive prefix sum of buf using the
// Blelloch work-efficient algorithm in barrier-phased form. It returns the
// total sum of the original buf (which the scan itself discards but every
// caller needs, e.g. for weight normalization).
//
// Non-power-of-two lengths are handled by padding into a scratch buffer.
func Exclusive(ctx device.Ctx, buf []float64) float64 {
	n := len(buf)
	if n == 0 {
		return 0
	}
	p := nextPow2(n)
	work := buf
	if p != n {
		work = make([]float64, p)
		copy(work, buf)
	}
	total := upDownSweep(ctx, work)
	if p != n {
		copy(buf, work[:n])
	}
	return total
}

// upDownSweep runs the Blelloch up-sweep/down-sweep on a power-of-two
// buffer and returns the total.
func upDownSweep(ctx device.Ctx, work []float64) float64 {
	p := len(work)
	lanes := ctx.Lanes()
	// Up-sweep: build the reduction tree. Lanes cover the tree nodes in
	// grid-stride fashion so groups smaller than the buffer stay correct.
	for d := 1; d < p; d <<= 1 {
		stride := d << 1
		nodes := p / stride
		dd := d
		ctx.Step(func(lane int) {
			for n := lane; n < nodes; n += lanes {
				i := (n+1)*stride - 1
				work[i] += work[i-dd]
				ctx.Ops(1)
				ctx.LocalRead(16)
				ctx.LocalWrite(8)
			}
		})
	}
	total := work[p-1]
	// Clear the root, then down-sweep distributing partial sums.
	ctx.Step(func(lane int) {
		if lane == 0 {
			work[p-1] = 0
			ctx.LocalWrite(8)
		}
	})
	for d := p >> 1; d >= 1; d >>= 1 {
		stride := d << 1
		nodes := p / stride
		dd := d
		ctx.Step(func(lane int) {
			for n := lane; n < nodes; n += lanes {
				i := (n+1)*stride - 1
				t := work[i-dd]
				work[i-dd] = work[i]
				work[i] += t
				ctx.Ops(1)
				ctx.LocalRead(16)
				ctx.LocalWrite(16)
			}
		})
	}
	return total
}

// MaxIndex performs a barrier-phased tree reduction over keys and returns
// the index of the maximum element (ties resolved to the lower index).
// This is the paper's global-estimate operator: select the particle with
// the highest weight (§IV, §VI-D).
func MaxIndex(ctx device.Ctx, keys []float64) int {
	n := len(keys)
	if n == 0 {
		return -1
	}
	p := nextPow2(n)
	val := make([]float64, p)
	idx := make([]int, p)
	ctx.Step(func(lane int) {
		for i := lane; i < p; i += ctx.Lanes() {
			if i < n {
				val[i] = keys[i]
			} else {
				val[i] = negInf
			}
			idx[i] = i
			ctx.LocalWrite(12)
		}
	})
	for stride := p >> 1; stride >= 1; stride >>= 1 {
		s := stride
		ctx.Step(func(lane int) {
			for i := lane; i < s; i += ctx.Lanes() {
				a, b := i, i+s
				if val[b] > val[a] || (val[b] == val[a] && idx[b] < idx[a]) {
					val[a], idx[a] = val[b], idx[b]
				}
				ctx.Ops(1)
				ctx.LocalRead(24)
				ctx.LocalWrite(12)
			}
		})
	}
	return idx[0]
}

const negInf = -1.7976931348623157e308

// SumTree performs a barrier-phased tree reduction and returns the sum of
// keys. It is used by the weighted-average estimate operator.
func SumTree(ctx device.Ctx, keys []float64) float64 {
	n := len(keys)
	if n == 0 {
		return 0
	}
	p := nextPow2(n)
	val := make([]float64, p)
	ctx.Step(func(lane int) {
		for i := lane; i < n; i += ctx.Lanes() {
			val[i] = keys[i]
			ctx.LocalWrite(8)
		}
	})
	for stride := p >> 1; stride >= 1; stride >>= 1 {
		s := stride
		ctx.Step(func(lane int) {
			for i := lane; i < s; i += ctx.Lanes() {
				val[i] += val[i+s]
				ctx.Ops(1)
				ctx.LocalRead(16)
				ctx.LocalWrite(8)
			}
		})
	}
	return val[0]
}
