// Package scan provides prefix-sum and reduction primitives in both
// sequential and barrier-phased data-parallel form.
//
// The paper's RWS resampling kernel initializes by computing an array of
// cumulative weight sums with a work-efficient parallel prefix sum
// ("we use a bank-conflict avoiding implementation", §VI-F, citing Harris
// et al., GPU Gems 3 ch. 39), and the global-estimate kernel is a parallel
// reduction (§VI-D). Both are implemented here once against device.Ctx so
// the sequential reference filters and the device kernels share code.
package scan

import "esthera/internal/device"

// ExclusiveSum writes into dst the exclusive prefix sums of src:
// dst[i] = src[0] + ... + src[i-1], dst[0] = 0. dst and src may alias.
func ExclusiveSum(dst, src []float64) {
	sum := 0.0
	for i, v := range src {
		dst[i] = sum
		sum += v
	}
}

// InclusiveSum writes into dst the inclusive prefix sums of src:
// dst[i] = src[0] + ... + src[i]. dst and src may alias.
func InclusiveSum(dst, src []float64) {
	sum := 0.0
	for i, v := range src {
		sum += v
		dst[i] = sum
	}
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, v := range xs {
		s += v
	}
	return s
}

// nextPow2 returns the smallest power of two >= n (n >= 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Plan is a reusable execution context for the barrier-phased primitives:
// it pre-binds the lane closures once, so repeated Exclusive/MaxIndex/
// SumTree calls on hot kernel paths allocate nothing (the plain package
// functions re-create their closures — and thus heap cells — per call,
// because the closures escape through the device.Ctx interface).
//
// A Plan carries per-call mutable state and must not be shared between
// concurrently executing work-groups; create one per group context (the
// kernel pipeline keeps one per sub-filter).
type Plan struct {
	ctx   device.Ctx
	work  []float64
	val   []float64
	idx   []int
	keys  []float64
	n, p2 int

	sweep struct{ stride, dd, nodes int }
	red   struct{ s int }

	up, down, clear, initMax, initSum, reduceMax, reduceSum func(lo, hi int)
}

// NewPlan returns a Plan with its lane closures bound.
func NewPlan() *Plan {
	pl := &Plan{}
	pl.initMax = func(lo, hi int) {
		val, idx, keys := pl.val, pl.idx, pl.keys
		n, p := pl.n, pl.p2
		for i := 0; i < p; i++ {
			if i < n {
				val[i] = keys[i]
			} else {
				val[i] = negInf
			}
			idx[i] = i
		}
	}
	pl.initSum = func(lo, hi int) {
		val, keys := pl.val, pl.keys
		for i := 0; i < pl.n; i++ {
			val[i] = keys[i]
		}
	}
	pl.up = func(lo, hi int) {
		work, st := pl.work, &pl.sweep
		for n := 0; n < st.nodes; n++ {
			i := (n+1)*st.stride - 1
			work[i] += work[i-st.dd]
		}
	}
	pl.down = func(lo, hi int) {
		work, st := pl.work, &pl.sweep
		for n := 0; n < st.nodes; n++ {
			i := (n+1)*st.stride - 1
			t := work[i-st.dd]
			work[i-st.dd] = work[i]
			work[i] += t
		}
	}
	pl.clear = func(lo, hi int) {
		pl.work[len(pl.work)-1] = 0
		pl.ctx.LocalWrite(8)
	}
	pl.reduceMax = func(lo, hi int) {
		val, idx, s := pl.val, pl.idx, pl.red.s
		for i := 0; i < s; i++ {
			a, b := i, i+s
			if val[b] > val[a] || (val[b] == val[a] && idx[b] < idx[a]) {
				val[a], idx[a] = val[b], idx[b]
			}
		}
	}
	pl.reduceSum = func(lo, hi int) {
		val, s := pl.val, pl.red.s
		for i := 0; i < s; i++ {
			val[i] += val[i+s]
		}
	}
	return pl
}

// Exclusive is the method form of the package-level Exclusive, reusing the
// plan's bound closures. Identical results and cost accounting.
//
//esthera:hotpath noalloc bce
func (pl *Plan) Exclusive(ctx device.Ctx, buf []float64) float64 {
	n := len(buf)
	if n == 0 {
		return 0
	}
	p := nextPow2(n)
	work := buf
	if p != n {
		work = ctx.ScratchF64(p)
		copy(work, buf)
	}
	pl.ctx, pl.work = ctx, work
	total := pl.upDownSweep()
	if p != n {
		copy(buf, work[:n])
	}
	return total
}

// upDownSweep mirrors the package-level upDownSweep on the plan's state.
//
//esthera:hotpath noalloc bce
func (pl *Plan) upDownSweep() float64 {
	ctx, work := pl.ctx, pl.work
	p := len(work)
	st := &pl.sweep
	visited := 0
	for d := 1; d < p; d <<= 1 {
		st.stride, st.dd = d<<1, d
		st.nodes = p / st.stride
		ctx.StepSpan(pl.up)
		visited += st.nodes
	}
	ctx.Ops(visited)
	ctx.LocalRead(16 * visited)
	ctx.LocalWrite(8 * visited)
	total := work[p-1]
	ctx.StepSpan(pl.clear)
	visited = 0
	for d := p >> 1; d >= 1; d >>= 1 {
		st.stride, st.dd = d<<1, d
		st.nodes = p / st.stride
		ctx.StepSpan(pl.down)
		visited += st.nodes
	}
	ctx.Ops(visited)
	ctx.LocalRead(16 * visited)
	ctx.LocalWrite(16 * visited)
	return total
}

// MaxIndex is the method form of the package-level MaxIndex, reusing the
// plan's bound closures. Identical results and cost accounting.
//
//esthera:hotpath noalloc bce
func (pl *Plan) MaxIndex(ctx device.Ctx, keys []float64) int {
	n := len(keys)
	if n == 0 {
		return -1
	}
	p := nextPow2(n)
	val := ctx.ScratchF64(p)
	idx := ctx.ScratchInt(p)
	pl.ctx, pl.val, pl.idx, pl.keys = ctx, val, idx, keys
	pl.n, pl.p2 = n, p
	ctx.StepSpan(pl.initMax)
	ctx.LocalWrite(12 * p)
	visited := 0
	for stride := p >> 1; stride >= 1; stride >>= 1 {
		pl.red.s = stride
		ctx.StepSpan(pl.reduceMax)
		visited += stride
	}
	ctx.Ops(visited)
	ctx.LocalRead(24 * visited)
	ctx.LocalWrite(12 * visited)
	return idx[0]
}

// SumTree is the method form of the package-level SumTree, reusing the
// plan's bound closures. Identical results and cost accounting.
//
//esthera:hotpath noalloc bce
func (pl *Plan) SumTree(ctx device.Ctx, keys []float64) float64 {
	n := len(keys)
	if n == 0 {
		return 0
	}
	p := nextPow2(n)
	val := ctx.ScratchF64(p)
	pl.ctx, pl.val, pl.keys = ctx, val, keys
	pl.n = n
	ctx.StepSpan(pl.initSum)
	ctx.LocalWrite(8 * n)
	visited := 0
	for stride := p >> 1; stride >= 1; stride >>= 1 {
		pl.red.s = stride
		ctx.StepSpan(pl.reduceSum)
		visited += stride
	}
	ctx.Ops(visited)
	ctx.LocalRead(16 * visited)
	ctx.LocalWrite(8 * visited)
	return val[0]
}

// Exclusive performs an in-place exclusive prefix sum of buf using the
// Blelloch work-efficient algorithm in barrier-phased form. It returns the
// total sum of the original buf (which the scan itself discards but every
// caller needs, e.g. for weight normalization).
//
// Non-power-of-two lengths are handled by padding into a scratch buffer.
func Exclusive(ctx device.Ctx, buf []float64) float64 {
	n := len(buf)
	if n == 0 {
		return 0
	}
	p := nextPow2(n)
	work := buf
	if p != n {
		work = ctx.ScratchF64(p)
		copy(work, buf)
	}
	total := upDownSweep(ctx, work)
	if p != n {
		copy(buf, work[:n])
	}
	return total
}

// upDownSweep runs the Blelloch up-sweep/down-sweep on a power-of-two
// buffer and returns the total. The tree levels reuse one closure per
// sweep direction and batch the per-node cost accounting into one flush
// per sweep (identical totals, no interface call per tree node). The
// visited-node counts are accumulated host-side between steps — a level
// visits exactly st.nodes nodes — so the lane closures write only their
// disjoint tree slots, as the barrier analyzer requires.
func upDownSweep(ctx device.Ctx, work []float64) float64 {
	p := len(work)
	// All mutable loop state shared with the closures lives in one struct:
	// a single heap cell per sweep instead of one escape per variable.
	// Tree levels run as one StepSpan each, covering all nodes of the
	// level (node updates within a level are disjoint).
	var st struct{ stride, dd, nodes int }
	up := func(lo, hi int) {
		for n := 0; n < st.nodes; n++ {
			i := (n+1)*st.stride - 1
			work[i] += work[i-st.dd]
		}
	}
	// Up-sweep: build the reduction tree.
	visited := 0
	for d := 1; d < p; d <<= 1 {
		st.stride, st.dd = d<<1, d
		st.nodes = p / st.stride
		ctx.StepSpan(up)
		visited += st.nodes
	}
	ctx.Ops(visited)
	ctx.LocalRead(16 * visited)
	ctx.LocalWrite(8 * visited)
	total := work[p-1]
	// Clear the root (lane 0's work), then down-sweep distributing
	// partial sums.
	ctx.StepSpan(func(lo, hi int) {
		work[p-1] = 0
		ctx.LocalWrite(8)
	})
	down := func(lo, hi int) {
		for n := 0; n < st.nodes; n++ {
			i := (n+1)*st.stride - 1
			t := work[i-st.dd]
			work[i-st.dd] = work[i]
			work[i] += t
		}
	}
	visited = 0
	for d := p >> 1; d >= 1; d >>= 1 {
		st.stride, st.dd = d<<1, d
		st.nodes = p / st.stride
		ctx.StepSpan(down)
		visited += st.nodes
	}
	ctx.Ops(visited)
	ctx.LocalRead(16 * visited)
	ctx.LocalWrite(16 * visited)
	return total
}

// MaxIndex performs a barrier-phased tree reduction over keys and returns
// the index of the maximum element (ties resolved to the lower index).
// This is the paper's global-estimate operator: select the particle with
// the highest weight (§IV, §VI-D).
func MaxIndex(ctx device.Ctx, keys []float64) int {
	n := len(keys)
	if n == 0 {
		return -1
	}
	p := nextPow2(n)
	val := ctx.ScratchF64(p)
	idx := ctx.ScratchInt(p)
	ctx.StepSpan(func(lo, hi int) {
		for i := 0; i < p; i++ {
			if i < n {
				val[i] = keys[i]
			} else {
				val[i] = negInf
			}
			idx[i] = i
		}
	})
	ctx.LocalWrite(12 * p)
	// The reduction closure shares one captured cell (the level's
	// stride); per-level node counts are accumulated host-side — a level
	// visits exactly stride pairs — keeping the lane closure free of
	// cross-lane writes.
	var st struct{ s int }
	reduce := func(lo, hi int) {
		for i := 0; i < st.s; i++ {
			a, b := i, i+st.s
			if val[b] > val[a] || (val[b] == val[a] && idx[b] < idx[a]) {
				val[a], idx[a] = val[b], idx[b]
			}
		}
	}
	visited := 0
	for stride := p >> 1; stride >= 1; stride >>= 1 {
		st.s = stride
		ctx.StepSpan(reduce)
		visited += stride
	}
	ctx.Ops(visited)
	ctx.LocalRead(24 * visited)
	ctx.LocalWrite(12 * visited)
	return idx[0]
}

const negInf = -1.7976931348623157e308

// SumTree performs a barrier-phased tree reduction and returns the sum of
// keys. It is used by the weighted-average estimate operator.
func SumTree(ctx device.Ctx, keys []float64) float64 {
	n := len(keys)
	if n == 0 {
		return 0
	}
	p := nextPow2(n)
	val := ctx.ScratchF64(p)
	ctx.StepSpan(func(lo, hi int) {
		for i := 0; i < n; i++ {
			val[i] = keys[i]
		}
	})
	ctx.LocalWrite(8 * n)
	// As in MaxIndex: stride is the only shared cell, and the per-level
	// node count (exactly stride adds) is accumulated host-side.
	var st struct{ s int }
	reduce := func(lo, hi int) {
		for i := 0; i < st.s; i++ {
			val[i] += val[i+st.s]
		}
	}
	visited := 0
	for stride := p >> 1; stride >= 1; stride >>= 1 {
		st.s = stride
		ctx.StepSpan(reduce)
		visited += stride
	}
	ctx.Ops(visited)
	ctx.LocalRead(16 * visited)
	ctx.LocalWrite(8 * visited)
	return val[0]
}
