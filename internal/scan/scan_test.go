package scan

import (
	"math"
	"testing"
	"testing/quick"

	"esthera/internal/device"
	"esthera/internal/rng"
)

func TestExclusiveSumSequential(t *testing.T) {
	src := []float64{1, 2, 3, 4}
	dst := make([]float64, 4)
	ExclusiveSum(dst, src)
	want := []float64{0, 1, 3, 6}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("dst[%d] = %v, want %v", i, dst[i], want[i])
		}
	}
	// Aliasing allowed.
	ExclusiveSum(src, src)
	for i := range want {
		if src[i] != want[i] {
			t.Fatalf("aliased dst[%d] = %v, want %v", i, src[i], want[i])
		}
	}
}

func TestInclusiveSumSequential(t *testing.T) {
	src := []float64{1, 2, 3, 4}
	dst := make([]float64, 4)
	InclusiveSum(dst, src)
	want := []float64{1, 3, 6, 10}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("dst[%d] = %v, want %v", i, dst[i], want[i])
		}
	}
}

func TestExclusiveMatchesSequential(t *testing.T) {
	r := rng.New(rng.NewPhilox(1))
	for _, n := range []int{1, 2, 3, 7, 8, 16, 100, 128, 1000} {
		src := make([]float64, n)
		for i := range src {
			src[i] = r.Float64()
		}
		want := make([]float64, n)
		ExclusiveSum(want, src)
		wantTotal := Sum(src)

		got := append([]float64(nil), src...)
		total := Exclusive(device.Serial{N: n}, got)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("n=%d: got[%d]=%v want %v", n, i, got[i], want[i])
			}
		}
		if math.Abs(total-wantTotal) > 1e-9 {
			t.Fatalf("n=%d: total %v want %v", n, total, wantTotal)
		}
	}
}

func TestExclusiveOnDeviceGroup(t *testing.T) {
	d := device.New(device.Config{Workers: 2, LocalMemBytes: -1})
	const n = 256
	r := rng.New(rng.NewPhilox(7))
	src := make([]float64, n)
	for i := range src {
		src[i] = r.Float64()
	}
	want := make([]float64, n)
	ExclusiveSum(want, src)
	got := append([]float64(nil), src...)
	d.Launch("scan", device.Grid{Groups: 1, GroupSize: n}, func(g *device.Group) {
		Exclusive(g, got)
	})
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("got[%d]=%v want %v", i, got[i], want[i])
		}
	}
}

func TestExclusiveEmpty(t *testing.T) {
	if total := Exclusive(device.Serial{N: 1}, nil); total != 0 {
		t.Fatalf("empty scan total = %v", total)
	}
}

func TestMaxIndex(t *testing.T) {
	cases := []struct {
		keys []float64
		want int
	}{
		{[]float64{1}, 0},
		{[]float64{1, 2}, 1},
		{[]float64{5, 2, 9, 1}, 2},
		{[]float64{5, 9, 9, 1}, 1}, // tie → lower index
		{[]float64{-3, -1, -2}, 1},
		{[]float64{0, 0, 0, 0, 0, 0, 7}, 6},
	}
	for _, c := range cases {
		if got := MaxIndex(device.Serial{N: len(c.keys)}, c.keys); got != c.want {
			t.Errorf("MaxIndex(%v) = %d, want %d", c.keys, got, c.want)
		}
	}
	if got := MaxIndex(device.Serial{N: 1}, nil); got != -1 {
		t.Errorf("MaxIndex(empty) = %d, want -1", got)
	}
}

func TestMaxIndexFewerLanesThanElements(t *testing.T) {
	// The reduction must be correct when the group is smaller than the
	// array (grid-stride loops).
	keys := make([]float64, 100)
	keys[63] = 42
	if got := MaxIndex(device.Serial{N: 8}, keys); got != 63 {
		t.Fatalf("MaxIndex with 8 lanes = %d, want 63", got)
	}
}

func TestSumTree(t *testing.T) {
	r := rng.New(rng.NewXoshiro(3))
	for _, n := range []int{1, 2, 5, 64, 100} {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Float64()
		}
		got := SumTree(device.Serial{N: 4}, xs)
		if math.Abs(got-Sum(xs)) > 1e-9 {
			t.Fatalf("SumTree n=%d: %v want %v", n, got, Sum(xs))
		}
	}
	if SumTree(device.Serial{N: 1}, nil) != 0 {
		t.Fatal("SumTree(empty) != 0")
	}
}

// Property: the parallel exclusive scan agrees with the sequential one on
// arbitrary inputs.
func TestQuickExclusiveEquivalence(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				// Clamp magnitudes so float error stays comparable.
				xs = append(xs, math.Mod(v, 1e6))
			}
		}
		want := make([]float64, len(xs))
		ExclusiveSum(want, xs)
		got := append([]float64(nil), xs...)
		Exclusive(device.Serial{N: len(xs) + 1}, got)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-6*(1+math.Abs(want[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkExclusiveSequential(b *testing.B) {
	xs := make([]float64, 1<<20)
	for i := range xs {
		xs[i] = 1
	}
	dst := make([]float64, len(xs))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ExclusiveSum(dst, xs)
	}
}
