package scan

import (
	"math"
	"testing"

	"esthera/internal/device"
	"esthera/internal/rng"
)

// TestPlanMatchesPackageFunctions checks the stateful Plan against the
// package-level primitives bit for bit: same buffers, same seeds, same
// lane counts. The Plan exists to make repeated invocations on hot kernel
// paths allocation-free; its results must be indistinguishable.
func TestPlanMatchesPackageFunctions(t *testing.T) {
	r := rng.New(rng.NewPhilox(11))
	pl := NewPlan()
	for _, n := range []int{1, 2, 3, 7, 8, 16, 100, 128, 513, 1000} {
		src := make([]float64, n)
		for i := range src {
			src[i] = r.Float64() - 0.3
		}

		a := append([]float64(nil), src...)
		b := append([]float64(nil), src...)
		wantTotal := Exclusive(device.Serial{N: n}, a)
		gotTotal := pl.Exclusive(device.Serial{N: n}, b)
		if math.Float64bits(wantTotal) != math.Float64bits(gotTotal) {
			t.Fatalf("n=%d: Exclusive total %v, plan %v", n, wantTotal, gotTotal)
		}
		for i := range a {
			if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
				t.Fatalf("n=%d: Exclusive[%d] %v, plan %v", n, i, a[i], b[i])
			}
		}

		if want, got := MaxIndex(device.Serial{N: n}, src), pl.MaxIndex(device.Serial{N: n}, src); want != got {
			t.Fatalf("n=%d: MaxIndex %d, plan %d", n, want, got)
		}
		want := SumTree(device.Serial{N: n}, src)
		got := pl.SumTree(device.Serial{N: n}, src)
		if math.Float64bits(want) != math.Float64bits(got) {
			t.Fatalf("n=%d: SumTree %v, plan %v", n, want, got)
		}
	}
}

// TestPlanOnDeviceGroup reruns the Plan primitives inside real device
// launches (grid-stride lanes, barrier phases) and checks cost accounting
// matches the package-level functions.
func TestPlanOnDeviceGroup(t *testing.T) {
	const n = 300
	r := rng.New(rng.NewPhilox(5))
	src := make([]float64, n)
	for i := range src {
		src[i] = r.Float64()
	}
	run := func(f func(ctx device.Ctx)) device.Counters {
		d := device.New(device.Config{Workers: 2, LocalMemBytes: -1})
		stats := d.Launch("plan-test", device.Grid{Groups: 1, GroupSize: 64}, func(g *device.Group) {
			f(g)
		})
		return stats.Count
	}

	var wantBuf, gotBuf []float64
	var wantTotal, gotTotal float64
	wantStats := run(func(ctx device.Ctx) {
		wantBuf = append([]float64(nil), src...)
		wantTotal = Exclusive(ctx, wantBuf)
	})
	pl := NewPlan()
	gotStats := run(func(ctx device.Ctx) {
		gotBuf = append([]float64(nil), src...)
		gotTotal = pl.Exclusive(ctx, gotBuf)
	})
	if math.Float64bits(wantTotal) != math.Float64bits(gotTotal) {
		t.Fatalf("totals differ: %v vs %v", wantTotal, gotTotal)
	}
	for i := range wantBuf {
		if math.Float64bits(wantBuf[i]) != math.Float64bits(gotBuf[i]) {
			t.Fatalf("prefix[%d]: %v vs %v", i, wantBuf[i], gotBuf[i])
		}
	}
	if wantStats.Ops != gotStats.Ops || wantStats.LocalReadBytes != gotStats.LocalReadBytes || wantStats.LocalWriteBytes != gotStats.LocalWriteBytes {
		t.Fatalf("accounting differs: package %+v plan %+v", wantStats, gotStats)
	}

	var wantIdx, gotIdx int
	wantStats = run(func(ctx device.Ctx) { wantIdx = MaxIndex(ctx, src) })
	gotStats = run(func(ctx device.Ctx) { gotIdx = pl.MaxIndex(ctx, src) })
	if wantIdx != gotIdx {
		t.Fatalf("MaxIndex %d vs plan %d", wantIdx, gotIdx)
	}
	if wantStats.Ops != gotStats.Ops {
		t.Fatalf("MaxIndex accounting differs: %+v vs %+v", wantStats, gotStats)
	}
}
