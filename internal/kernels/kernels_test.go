package kernels

import (
	"math"
	"testing"

	"esthera/internal/device"
	"esthera/internal/exchange"
	"esthera/internal/model"
	"esthera/internal/model/arm"
	"esthera/internal/resample"
	"esthera/internal/rng"
)

func newPipeline(t *testing.T, cfg Config, seed uint64) *Pipeline {
	t.Helper()
	dev := device.New(device.Config{Workers: 4, LocalMemBytes: -1})
	if cfg.Topology == nil && cfg.ExchangeCount > 0 {
		top, err := exchange.NewTopology(exchange.Ring, cfg.SubFilters)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Topology = top
	}
	p, err := New(dev, model.NewUNGM(), cfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestValidation(t *testing.T) {
	dev := device.New(device.Config{Workers: 1})
	m := model.NewUNGM()
	if _, err := New(dev, m, Config{SubFilters: 0, ParticlesPer: 4}, 1); err == nil {
		t.Fatal("zero sub-filters must error")
	}
	top, _ := exchange.NewTopology(exchange.Ring, 8)
	if _, err := New(dev, m, Config{SubFilters: 4, ParticlesPer: 4, Topology: top}, 1); err == nil {
		t.Fatal("topology size mismatch must error")
	}
	top4, _ := exchange.NewTopology(exchange.Ring, 4)
	if _, err := New(dev, m, Config{SubFilters: 4, ParticlesPer: 4, Topology: top4, ExchangeCount: 2}, 1); err == nil {
		t.Fatal("incoming >= m must error")
	}
}

func TestKernelNamesMatchPaperBreakdown(t *testing.T) {
	p := newPipeline(t, Config{SubFilters: 8, ParticlesPer: 16, ExchangeCount: 1}, 1)
	z := []float64{0.5}
	p.Round(nil, z, 1)
	want := map[string]bool{
		"rand": true, "sampling": true, "local sort": true,
		"global estimate": true, "exchange": true, "resampling": true,
	}
	snap := p.Device().Profiler().Snapshot()
	got := map[string]bool{}
	for _, e := range snap {
		got[e.Name] = true
	}
	for name := range want {
		if !got[name] {
			t.Errorf("kernel %q missing from profile (have %v)", name, got)
		}
	}
	if len(got) != len(want) {
		t.Errorf("unexpected kernels in profile: %v", got)
	}
}

func TestSortKernelOrdersEveryBlock(t *testing.T) {
	p := newPipeline(t, Config{SubFilters: 8, ParticlesPer: 32}, 2)
	// Scatter arbitrary log-weights, run the sort kernel, check order and
	// payload association.
	r := rng.New(rng.NewPhilox(3))
	lw := p.LogWeights()
	for i := range lw {
		lw[i] = r.Float64() * 10
	}
	// Tag each particle's state with its own weight so we can verify the
	// payload moved with the key (UNGM dim = 1).
	x := p.Particles()
	for i := range lw {
		x[i] = lw[i]
	}
	p.SetParticles(x)
	p.KernelSortLocal()
	lw = p.LogWeights()
	x = p.Particles()
	m := 32
	for s := 0; s < 8; s++ {
		for i := 1; i < m; i++ {
			if lw[s*m+i] > lw[s*m+i-1] {
				t.Fatalf("block %d not descending at %d", s, i)
			}
		}
		for i := 0; i < m; i++ {
			if x[s*m+i] != lw[s*m+i] {
				t.Fatalf("payload did not follow key: block %d slot %d", s, i)
			}
		}
	}
}

func TestEstimateKernelPicksGlobalBest(t *testing.T) {
	p := newPipeline(t, Config{SubFilters: 16, ParticlesPer: 8}, 3)
	lw := p.LogWeights()
	for i := range lw {
		lw[i] = -float64(i)
	}
	// Plant the best at block 11, and make block heads reflect sorted
	// order (estimate assumes sorted blocks: head = block max).
	lw[11*8] = 100
	x := p.Particles()
	x[11*8] = 123.456
	p.SetParticles(x)
	state, best := p.KernelEstimate()
	if best != 100 {
		t.Fatalf("best log-weight %v, want 100", best)
	}
	if sub, _ := p.Best(); sub != 11 {
		t.Fatalf("best sub-filter %d, want 11", sub)
	}
	if state[0] != 123.456 {
		t.Fatalf("best state %v, want 123.456", state[0])
	}
}

func TestExchangeRingMovesBestToNeighborsWorstSlots(t *testing.T) {
	const N, m, tc = 4, 8, 2
	top, _ := exchange.NewTopology(exchange.Ring, N)
	p := newPipeline(t, Config{SubFilters: N, ParticlesPer: m, ExchangeCount: tc, Topology: top}, 4)
	lw := p.LogWeights()
	x := p.Particles()
	// Give block s weights descending from 100s (pre-sorted), tag states.
	for s := 0; s < N; s++ {
		for i := 0; i < m; i++ {
			lw[s*m+i] = float64(100*s) - float64(i)
			x[s*m+i] = float64(1000*s + i)
		}
	}
	p.SetParticles(x)
	p.KernelExchange()
	lw = p.LogWeights()
	x = p.Particles()
	// Block 0's neighbors are 3 and 1; its worst 4 slots (2 neighbors × 2)
	// must now hold their top-2 particles.
	wantStates := []float64{3000, 3001, 1000, 1001}
	wantW := []float64{300, 299, 100, 99}
	for i := 0; i < 4; i++ {
		slot := m - 4 + i
		if x[slot] != wantStates[i] || lw[slot] != wantW[i] {
			t.Fatalf("slot %d: state %v weight %v, want %v/%v", slot, x[slot], lw[slot], wantStates[i], wantW[i])
		}
	}
	// Untouched slots keep native particles.
	for i := 0; i < m-4; i++ {
		if x[i] != float64(i) {
			t.Fatalf("native slot %d overwritten: %v", i, x[i])
		}
	}
}

func TestExchangeAllToAllBroadcastsGlobalBest(t *testing.T) {
	const N, m, tc = 4, 8, 2
	top, _ := exchange.NewTopology(exchange.AllToAll, N)
	p := newPipeline(t, Config{SubFilters: N, ParticlesPer: m, ExchangeCount: tc, Topology: top}, 5)
	lw := p.LogWeights()
	x := p.Particles()
	for s := 0; s < N; s++ {
		for i := 0; i < m; i++ {
			lw[s*m+i] = float64(10*s) - float64(i)
			x[s*m+i] = float64(1000*s + i)
		}
	}
	p.SetParticles(x)
	p.KernelExchange()
	lw = p.LogWeights()
	x = p.Particles()
	// Global best two of the pooled (top-2 per block) are 30, 29 from
	// block 3; every block's worst 2 slots must hold exactly those.
	for s := 0; s < N; s++ {
		for i := 0; i < tc; i++ {
			slot := s*m + m - tc + i
			if lw[slot] != float64(30-i) || x[slot] != float64(3000+i) {
				t.Fatalf("block %d slot %d: got w=%v x=%v", s, i, lw[slot], x[slot])
			}
		}
	}
}

func TestExchangeCountZeroIsNoOp(t *testing.T) {
	p := newPipeline(t, Config{SubFilters: 4, ParticlesPer: 8}, 6)
	before := append([]float64(nil), p.Particles()...)
	p.KernelExchange()
	for i, v := range p.Particles() {
		if v != before[i] {
			t.Fatal("exchange with t=0 modified particles")
		}
	}
}

func TestResampleKernelResetsWeightsAndConcentrates(t *testing.T) {
	for _, algo := range []Algo{AlgoRWS, AlgoVose, AlgoSystematic} {
		p := newPipeline(t, Config{SubFilters: 4, ParticlesPer: 64, Resampler: algo}, 7)
		lw := p.LogWeights()
		x := p.Particles()
		// One dominant particle per block (slot 5).
		for s := 0; s < 4; s++ {
			for i := 0; i < 64; i++ {
				lw[s*64+i] = -1000
				x[s*64+i] = float64(i)
			}
			lw[s*64+5] = 0
		}
		p.SetParticles(x)
		p.KernelResample()
		lw = p.LogWeights()
		x = p.Particles()
		for s := 0; s < 4; s++ {
			for i := 0; i < 64; i++ {
				if lw[s*64+i] != 0 {
					t.Fatalf("%v: weight not reset at block %d slot %d", algo, s, i)
				}
				if x[s*64+i] != 5 {
					t.Fatalf("%v: slot %d of block %d = %v, want the dominant particle 5", algo, i, s, x[s*64+i])
				}
			}
		}
	}
}

func TestResampleKernelProportions(t *testing.T) {
	// Statistical check: two particles with weights 0.25/0.75 in each
	// block; after resampling, survivor counts must reflect that.
	// Metropolis participates: its chain bias at B = 2·⌈log₂ m⌉ + 8 must
	// stay inside the same statistical band as the exact resamplers.
	for _, algo := range []Algo{AlgoRWS, AlgoVose, AlgoSystematic, AlgoMetropolis} {
		p := newPipeline(t, Config{SubFilters: 64, ParticlesPer: 64, Resampler: algo}, 8)
		lw := p.LogWeights()
		x := p.Particles()
		for i := range lw {
			if i%2 == 0 {
				lw[i] = math.Log(0.25)
				x[i] = 0
			} else {
				lw[i] = math.Log(0.75)
				x[i] = 1
			}
		}
		p.SetParticles(x)
		p.KernelResample()
		ones := 0
		for _, v := range p.Particles() {
			if v == 1 {
				ones++
			}
		}
		frac := float64(ones) / float64(len(p.Particles()))
		if frac < 0.70 || frac > 0.80 {
			t.Fatalf("%v: heavy-particle fraction %v, want ≈ 0.75", algo, frac)
		}
	}
}

func TestResamplePolicyNeverKeepsPopulation(t *testing.T) {
	p := newPipeline(t, Config{SubFilters: 4, ParticlesPer: 16, Policy: resample.Never{}}, 9)
	lw := p.LogWeights()
	x := p.Particles()
	for i := range lw {
		lw[i] = float64(i)
		x[i] = float64(i)
	}
	p.SetParticles(x)
	p.KernelResample()
	for i, v := range p.Particles() {
		if v != float64(i) {
			t.Fatal("policy Never still resampled")
		}
	}
	if p.LogWeights()[3] != 3 {
		t.Fatal("policy Never reset weights")
	}
}

func TestRandKernelFeedsSampling(t *testing.T) {
	// After the rand kernel, the sampling kernel must be deterministic
	// given the seed: two pipelines with the same seed produce identical
	// particle sets after a round.
	mk := func() *Pipeline {
		return newPipeline(t, Config{SubFilters: 8, ParticlesPer: 16, ExchangeCount: 1}, 42)
	}
	a, b := mk(), mk()
	z := []float64{1.2}
	a.Round(nil, z, 1)
	b.Round(nil, z, 1)
	for i := range a.Particles() {
		if a.Particles()[i] != b.Particles()[i] {
			t.Fatalf("same-seed pipelines diverge at particle %d", i)
		}
	}
}

func TestLocalMemoryFitsGPUDefaults(t *testing.T) {
	// The paper's GPU sub-filter sizes (128–512 particles) must fit the
	// default 48 KiB local memory across all kernels.
	dev := device.New(device.Config{Workers: 2}) // default 48 KiB
	m, _, err := arm.NewScenario(arm.Config{}, arm.DefaultLemniscate())
	if err != nil {
		t.Fatal(err)
	}
	top, _ := exchange.NewTopology(exchange.Ring, 4)
	p, err := New(dev, m, Config{SubFilters: 4, ParticlesPer: 512, ExchangeCount: 1, Topology: top}, 1)
	if err != nil {
		t.Fatal(err)
	}
	z := make([]float64, m.MeasurementDim())
	u := make([]float64, m.ControlDim())
	p.Round(u, z, 1) // panics on local-memory overflow
}

func TestMeanEstimateKernel(t *testing.T) {
	dev := device.New(device.Config{Workers: 2, LocalMemBytes: -1})
	p, err := New(dev, model.NewUNGM(), Config{SubFilters: 4, ParticlesPer: 8, MeanEstimate: true}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Uniform weights: the mean estimate is the plain average of states.
	lw := p.LogWeights()
	x := p.Particles()
	want := 0.0
	for i := range lw {
		lw[i] = 0
		x[i] = float64(i)
		want += float64(i)
	}
	p.SetParticles(x)
	want /= float64(len(x))
	state, _ := p.KernelEstimate()
	if math.Abs(state[0]-want) > 1e-9 {
		t.Fatalf("uniform-weight mean = %v, want %v", state[0], want)
	}
	// One dominant particle: the mean collapses onto it. The estimate
	// kernel reads block heads for the global max (blocks are sorted in
	// a real round), so the dominant particle sits at a block head.
	for i := range lw {
		lw[i] = -1e6
	}
	lw[1*8] = 0 // head of block 1
	state, bestLW := p.KernelEstimate()
	if math.Abs(state[0]-x[1*8]) > 1e-6 {
		t.Fatalf("dominated mean = %v, want %v", state[0], x[1*8])
	}
	if bestLW != 0 {
		t.Fatalf("best log-weight %v, want 0", bestLW)
	}
}

func TestMeanEstimateDegenerateWeights(t *testing.T) {
	dev := device.New(device.Config{Workers: 1, LocalMemBytes: -1})
	p, err := New(dev, model.NewUNGM(), Config{SubFilters: 2, ParticlesPer: 4, MeanEstimate: true}, 1)
	if err != nil {
		t.Fatal(err)
	}
	lw := p.LogWeights()
	for i := range lw {
		lw[i] = math.Inf(-1)
	}
	state, _ := p.KernelEstimate()
	if math.IsNaN(state[0]) {
		t.Fatal("degenerate weights produced NaN estimate")
	}
}
