package kernels

import (
	"fmt"
	"testing"

	"esthera/internal/device"
	"esthera/internal/exchange"
	"esthera/internal/model"
)

// fusedTracePair builds two identically configured and seeded pipelines
// on independent devices: one stepped with the unfused Round, one with
// RoundFused.
func fusedTracePair(t *testing.T, algo Algo, mean bool, seed uint64) (unfused, fused *Pipeline) {
	t.Helper()
	mk := func() *Pipeline {
		dev := device.New(device.Config{Workers: 4, LocalMemBytes: -1})
		top, err := exchange.NewTopology(exchange.Ring, 8)
		if err != nil {
			t.Fatal(err)
		}
		p, err := New(dev, model.NewUNGM(), Config{
			SubFilters:    8,
			ParticlesPer:  16,
			ExchangeCount: 1,
			Topology:      top,
			Resampler:     algo,
			MeanEstimate:  mean,
		}, seed)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	return mk(), mk()
}

// TestFusedRoundBitIdentical is the golden-trace test: across multiple
// seeds, both resampling kernels of the paper, and both estimators, the
// fused round must consume the random streams in the same order and
// produce bit-identical estimates, log-weights, and particle buffers as
// the unfused kernel-per-launch round.
func TestFusedRoundBitIdentical(t *testing.T) {
	for _, algo := range []Algo{AlgoRWS, AlgoVose, AlgoMetropolis} {
		for _, mean := range []bool{false, true} {
			for _, seed := range []uint64{1, 2, 3} {
				name := fmt.Sprintf("%s/mean=%v/seed=%d", algo, mean, seed)
				t.Run(name, func(t *testing.T) {
					u, f := fusedTracePair(t, algo, mean, seed)
					for k := 1; k <= 12; k++ {
						z := []float64{0.3*float64(k) - 1}
						su, lu := u.Round(nil, z, k)
						sf, lf := f.RoundFused(nil, z, k)
						if lu != lf {
							t.Fatalf("step %d: log-weight diverged: %v vs %v", k, lu, lf)
						}
						for d := range su {
							if su[d] != sf[d] {
								t.Fatalf("step %d: estimate[%d] diverged: %v vs %v", k, d, su[d], sf[d])
							}
						}
						bu, _ := u.Best()
						bf, _ := f.Best()
						if bu != bf {
							t.Fatalf("step %d: best sub-filter diverged: %d vs %d", k, bu, bf)
						}
						for i, w := range u.LogWeights() {
							if w != f.LogWeights()[i] {
								t.Fatalf("step %d: logw[%d] diverged: %v vs %v", k, i, w, f.LogWeights()[i])
							}
						}
						for i, x := range u.Particles() {
							if x != f.Particles()[i] {
								t.Fatalf("step %d: particle[%d] diverged: %v vs %v", k, i, x, f.Particles()[i])
							}
						}
					}
				})
			}
		}
	}
}

// TestFusedProfilerAttribution asserts that fusing the group-local
// kernels leaves the per-kernel profiler attribution intact: the fused
// device must report entries under the same six kernel names, and the
// work counters of the fused phases must equal the unfused launches'
// exactly (the Fig. 4 kernel-breakdown inputs survive fusion).
func TestFusedProfilerAttribution(t *testing.T) {
	u, f := fusedTracePair(t, AlgoRWS, false, 7)
	for k := 1; k <= 5; k++ {
		z := []float64{0.5 * float64(k)}
		u.Round(nil, z, k)
		f.RoundFused(nil, z, k)
	}
	indexed := func(p *Pipeline) map[string]device.KernelStats {
		out := map[string]device.KernelStats{}
		for _, e := range p.Device().Profiler().Snapshot() {
			out[e.Name] = e
		}
		return out
	}
	us, fs := indexed(u), indexed(f)
	for _, name := range []string{"rand", "sampling", "local sort", "global estimate", "exchange", "resampling"} {
		ue, ok := us[name]
		if !ok {
			t.Fatalf("unfused profiler missing %q", name)
		}
		fe, ok := fs[name]
		if !ok {
			t.Fatalf("fused profiler missing %q", name)
		}
		if ue.Count != fe.Count {
			t.Errorf("%s counters diverged under fusion:\n unfused %+v\n fused   %+v", name, ue.Count, fe.Count)
		}
		if ue.Launches != fe.Launches {
			t.Errorf("%s launches = %d fused vs %d unfused", name, fe.Launches, ue.Launches)
		}
		if fe.Elapsed < 0 {
			t.Errorf("%s fused elapsed negative", name)
		}
	}
}
