//go:build !race

package kernels_test

// raceEnabled reports whether the race detector is active.
const raceEnabled = false
