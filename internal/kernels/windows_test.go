package kernels

import (
	"math"
	"testing"

	"esthera/internal/device"
	"esthera/internal/exchange"
	"esthera/internal/model"
)

func newWindowPipeline(t *testing.T, algo Algo, seed uint64) *Pipeline {
	t.Helper()
	dev := device.New(device.Config{Workers: 4, LocalMemBytes: -1})
	top, err := exchange.NewTopology(exchange.Ring, 8)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(dev, model.NewUNGM(), Config{
		SubFilters:    8,
		ParticlesPer:  16,
		ExchangeCount: 1,
		Topology:      top,
		Resampler:     algo,
	}, seed)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func stepRounds(p *Pipeline, from, n int) ([]float64, float64) {
	var state []float64
	var lw float64
	for k := from; k < from+n; k++ {
		z := []float64{0.4*float64(k) - 1}
		state, lw = p.RoundFused(nil, z, k)
	}
	return state, lw
}

func TestReallocateValidation(t *testing.T) {
	p := newWindowPipeline(t, AlgoRWS, 1)
	cases := []struct {
		name  string
		sizes []int
	}{
		{"wrong-count", []int{64, 64}},
		{"sum-mismatch", []int{16, 16, 16, 16, 16, 16, 16, 17}},
		{"zero-window", []int{0, 32, 16, 16, 16, 16, 16, 16}},
		// Ring degree 2 × t=1 ⇒ 2 incoming; a window of 2 cannot hold them.
		{"window-below-incoming", []int{2, 30, 16, 16, 16, 16, 16, 16}},
	}
	for _, c := range cases {
		if err := p.Reallocate(c.sizes); err == nil {
			t.Errorf("%s: Reallocate(%v) must fail", c.name, c.sizes)
		}
	}
	// A failed call must leave the uniform windows untouched.
	for s, l := range p.Windows() {
		if l != 16 {
			t.Fatalf("window %d = %d after failed Reallocate, want 16", s, l)
		}
	}
	if p.Reallocations() != 0 {
		t.Fatalf("failed Reallocate counted: %d", p.Reallocations())
	}
}

func TestReallocateMovesParticles(t *testing.T) {
	p := newWindowPipeline(t, AlgoRWS, 2)
	// Tag every particle with its arena row so moves are observable.
	x := p.Particles()
	lw := p.LogWeights()
	for i := range x {
		x[i] = float64(i)
		lw[i] = float64(i) / 100
	}
	p.SetParticles(x)

	sizes := []int{24, 8, 16, 16, 24, 8, 16, 16}
	if err := p.Reallocate(sizes); err != nil {
		t.Fatal(err)
	}
	if p.Reallocations() != 1 {
		t.Fatalf("Reallocations = %d, want 1", p.Reallocations())
	}
	got := p.Windows()
	for s := range sizes {
		if got[s] != sizes[s] {
			t.Fatalf("window %d = %d, want %d", s, got[s], sizes[s])
		}
	}

	// Shrunk window 1 (rows 16..31 before) keeps its leading 8 rows;
	// grown window 0 cycle-clones its 16 rows over 24 slots. Log-weights
	// travel with their particles.
	rec := make([]float64, 1)
	for j := 0; j < 24; j++ {
		p.ReadParticle(0, j, rec)
		want := float64(j % 16)
		if rec[0] != want {
			t.Fatalf("grown window slot %d = %v, want cycle-cloned row %v", j, rec[0], want)
		}
	}
	for j := 0; j < 8; j++ {
		p.ReadParticle(1, j, rec)
		want := float64(16 + j)
		if rec[0] != want {
			t.Fatalf("shrunk window slot %d = %v, want prefix row %v", j, rec[0], want)
		}
	}
	lw = p.LogWeights()
	if lw[16] != float64(16%16)/100 {
		t.Fatalf("grown window clone log-weight = %v", lw[16])
	}
	if lw[24+5] != float64(16+5)/100 {
		t.Fatalf("shrunk window log-weight = %v", lw[24+5])
	}

	// No-op reallocation (same sizes) must not count.
	if err := p.Reallocate(sizes); err != nil {
		t.Fatal(err)
	}
	if p.Reallocations() != 1 {
		t.Fatalf("no-op Reallocate counted: %d", p.Reallocations())
	}
}

// TestReallocateCheckpointRoundTrip pins the adaptive allocator's
// restore contract: a snapshot taken after a window resize restores into
// a fresh pipeline bit-exactly — both filters produce identical
// estimates, log-weights, and particle buffers for every subsequent
// round.
func TestReallocateCheckpointRoundTrip(t *testing.T) {
	for _, algo := range []Algo{AlgoRWS, AlgoMetropolis} {
		p := newWindowPipeline(t, algo, 3)
		stepRounds(p, 1, 3)
		if err := p.Reallocate([]int{24, 8, 16, 16, 24, 8, 16, 16}); err != nil {
			t.Fatal(err)
		}
		stepRounds(p, 4, 3)

		snap := p.Snapshot()
		if snap.Windows == nil {
			t.Fatal("snapshot of a resized pipeline must carry windows")
		}

		q := newWindowPipeline(t, algo, 99) // different seed: restore must overwrite
		if err := q.Restore(snap); err != nil {
			t.Fatal(err)
		}
		for s, l := range q.Windows() {
			if l != snap.Windows[s] {
				t.Fatalf("%v: restored window %d = %d, want %d", algo, s, l, snap.Windows[s])
			}
		}
		for k := 7; k <= 12; k++ {
			z := []float64{0.4*float64(k) - 1}
			sp, lp := p.RoundFused(nil, z, k)
			sq, lq := q.RoundFused(nil, z, k)
			if lp != lq {
				t.Fatalf("%v: step %d log-weight diverged: %v vs %v", algo, k, lp, lq)
			}
			for d := range sp {
				if sp[d] != sq[d] {
					t.Fatalf("%v: step %d estimate diverged", algo, k)
				}
			}
			for i, w := range p.LogWeights() {
				if w != q.LogWeights()[i] {
					t.Fatalf("%v: step %d logw[%d] diverged", algo, k, i)
				}
			}
			for i, x := range p.Particles() {
				if x != q.Particles()[i] {
					t.Fatalf("%v: step %d particle[%d] diverged", algo, k, i)
				}
			}
		}
	}
}

// TestUniformSnapshotHasNoWindows pins the wire format: pipelines that
// never reallocated serialize exactly as before the adaptive allocator
// existed (Windows omitted).
func TestUniformSnapshotHasNoWindows(t *testing.T) {
	p := newWindowPipeline(t, AlgoRWS, 4)
	stepRounds(p, 1, 2)
	if snap := p.Snapshot(); snap.Windows != nil {
		t.Fatalf("uniform pipeline snapshot carries windows %v", snap.Windows)
	}
}

// TestAdaptiveWindowsFilterStepsSanely runs non-uniform windows through
// full rounds for every local scheme and checks the filter stays finite
// and the window partition is preserved.
func TestAdaptiveWindowsFilterStepsSanely(t *testing.T) {
	for _, algo := range []Algo{AlgoRWS, AlgoVose, AlgoSystematic, AlgoMetropolis} {
		p := newWindowPipeline(t, algo, 5)
		stepRounds(p, 1, 2)
		sizes := []int{32, 4, 12, 16, 28, 8, 20, 8}
		if err := p.Reallocate(sizes); err != nil {
			t.Fatal(err)
		}
		state, lw := stepRounds(p, 3, 6)
		if math.IsNaN(state[0]) || math.IsNaN(lw) {
			t.Fatalf("%v: adaptive windows produced NaN estimate", algo)
		}
		for s, l := range p.Windows() {
			if l != sizes[s] {
				t.Fatalf("%v: window %d drifted to %d", algo, s, l)
			}
		}
		essf := p.SubESSFrac(nil)
		if len(essf) != 8 {
			t.Fatalf("SubESSFrac returned %d entries", len(essf))
		}
		for s, f := range essf {
			if !(f >= 0 && f <= 1.0000001) {
				t.Fatalf("%v: SubESSFrac[%d] = %v out of range", algo, s, f)
			}
		}
	}
}

// TestResampleESSFracIsHonest pins the allocator-signal bugfix: under an
// always-resample policy the post-round log-weights are freshly reset, so
// their ESS fraction reads a lying "fully healthy" 1.0 for every
// sub-filter, every round. The signal recorded inside the round at the
// resample decision point retains the actual pre-reset degeneracy — the
// adaptive allocator must read that one.
func TestResampleESSFracIsHonest(t *testing.T) {
	p := newWindowPipeline(t, AlgoRWS, 7)
	for s, f := range p.ResampleESSFrac(nil) {
		if f != 1 {
			t.Fatalf("pre-round recorded ESS frac [%d] = %v, want healthy prior 1", s, f)
		}
	}
	stepRounds(p, 1, 5)
	post := p.SubESSFrac(nil)
	rec := p.ResampleESSFrac(nil)
	for s, f := range post {
		if math.Abs(f-1) > 1e-9 {
			t.Fatalf("post-round live ESS frac [%d] = %v — resampled weights must read uniform (that is the lie)", s, f)
		}
	}
	anyDegraded := false
	for s, f := range rec {
		if !(f >= 0 && f <= 1.0000001) {
			t.Fatalf("recorded ESS frac [%d] = %v out of range", s, f)
		}
		if f < 0.999 {
			anyDegraded = true
		}
	}
	if !anyDegraded {
		t.Fatal("recorded resample-point ESS reads fully healthy everywhere — the honest signal was not captured")
	}
}

// TestSubESSFracSignals checks the allocator's input signal: uniform
// weights read ≈1, a collapsed window reads ≈0, and poisoned windows
// clamp to exactly 0.
func TestSubESSFracSignals(t *testing.T) {
	p := newPipeline(t, Config{SubFilters: 4, ParticlesPer: 16}, 6)
	lw := p.LogWeights()
	for i := 0; i < 16; i++ { // window 0: uniform
		lw[i] = -2
	}
	for i := 16; i < 32; i++ { // window 1: collapsed onto slot 0
		lw[i] = -900
	}
	lw[16] = 0
	for i := 32; i < 48; i++ { // window 2: poisoned
		lw[i] = -1
	}
	lw[40] = math.NaN()
	for i := 48; i < 64; i++ { // window 3: fully underflowed
		lw[i] = math.Inf(-1)
	}
	f := p.SubESSFrac(nil)
	if math.Abs(f[0]-1) > 1e-12 {
		t.Fatalf("uniform window ESS frac = %v, want 1", f[0])
	}
	if f[1] > 0.07 {
		t.Fatalf("collapsed window ESS frac = %v, want ≈ 1/16", f[1])
	}
	if f[2] != 0 {
		t.Fatalf("poisoned window ESS frac = %v, want exactly 0", f[2])
	}
	if f[3] != 0 {
		t.Fatalf("underflowed window ESS frac = %v, want exactly 0", f[3])
	}
}
