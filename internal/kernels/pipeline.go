// Package kernels implements the six computational kernels of the
// paper's many-core distributed particle filter (§VI) on the device
// substrate:
//
//  1. Pseudo-random number generation  ("rand")
//  2. Sampling + importance weighting  ("sampling")
//  3. Local sorting                    ("local sort")
//  4. Global estimate                  ("global estimate")
//  5. Particle exchange                ("exchange")
//  6. Resampling                       ("resampling")
//
// One work-group processes one sub-filter and one lane one particle,
// exactly the paper's mapping ("each GPGPU thread processes one particle
// and each work group one sub-filter"). Particle state is stored in
// global memory as structure-of-arrays columns — dim contiguous
// per-dimension arrays — so the vectorized lane kernels (device.Ctx.
// StepVec + model.VecModel) stream unit-stride over each dimension; the
// paper's AoS-preference argument (§VI) is about PCIe transfer
// granularity, which does not apply to this host-resident substrate,
// and every external surface (exchange records, checkpoints, the
// Particles accessor) still speaks AoS, packed at the boundary. Weights
// and sort indices live in local memory during sorting; reorderings
// prefer non-contiguous reads over non-contiguous writes, as the paper
// prescribes.
package kernels

import (
	"fmt"
	"math"

	"esthera/internal/device"
	"esthera/internal/exchange"
	"esthera/internal/model"
	"esthera/internal/resample"
	"esthera/internal/rng"
	"esthera/internal/scan"
	"esthera/internal/sortnet"
	"esthera/internal/telemetry"
)

// Algo selects the resampling kernel (Fig. 5 compares the two).
type Algo int

// Resampling kernel algorithms.
const (
	// AlgoRWS is Roulette Wheel Selection: parallel prefix sum over the
	// local weights, then one binary search per lane.
	AlgoRWS Algo = iota
	// AlgoVose is Vose's alias method with the paper's in-place
	// small/large table construction.
	AlgoVose
	// AlgoSystematic is systematic resampling adapted to the lane model
	// (a toolkit extension beyond the paper's two): one shared uniform
	// offset, each lane binary-searches its own equally spaced pointer.
	// Fully parallel like RWS but with a single random draw per
	// sub-filter and minimal resampling variance.
	AlgoSystematic
	// AlgoMetropolis is Murray et al.'s collective-free Metropolis
	// resampler (arXiv:1202.6163): each lane runs an independent biased
	// random walk over the weights — no prefix-sum scan, no alias table,
	// and no sorted input, so the fused round's bitonic sort collapses to
	// a top-t selection. Slightly biased (chain length bounds the bias);
	// the EXPERIMENTS.md ablation quantifies the accuracy cost.
	AlgoMetropolis
)

// AlgoByName maps a flag-friendly name ("rws", "vose", "systematic",
// "metropolis"; "" defaults to rws) to a resampling kernel.
func AlgoByName(name string) (Algo, error) {
	switch name {
	case "", "rws":
		return AlgoRWS, nil
	case "vose":
		return AlgoVose, nil
	case "systematic":
		return AlgoSystematic, nil
	case "metropolis":
		return AlgoMetropolis, nil
	}
	return 0, fmt.Errorf("kernels: unknown resampler %q (device pipeline supports rws, vose, systematic, metropolis)", name)
}

// String returns the algorithm name.
func (a Algo) String() string {
	switch a {
	case AlgoVose:
		return "vose"
	case AlgoSystematic:
		return "systematic"
	case AlgoMetropolis:
		return "metropolis"
	}
	return "rws"
}

// Config parameterizes a Pipeline (the Table I parameters plus kernel
// choices).
type Config struct {
	SubFilters    int
	ParticlesPer  int
	ExchangeCount int
	Topology      *exchange.Topology
	Resampler     Algo
	// Policy defaults to Always; it is evaluated per sub-filter inside
	// the resampling kernel on the local weights, so no global reduction
	// is needed (the real-time property §III-A argues for).
	Policy resample.Policy
	// Streams selects the per-sub-filter generator family: "philox"
	// (default) or "mtgp".
	Streams string
	// MeanEstimate switches the global-estimate kernel from the paper's
	// default max-weight particle to the weighted average (§VI-D: "the
	// reduction operator can compute the particle with the highest
	// weight, a weighted average, or any other associative operator").
	MeanEstimate bool
}

// soaBuf holds one generation of the particle population in
// structure-of-arrays layout: one contiguous arena of dim·N·m floats cut
// into dim columns of N·m rows each, plus per-sub-filter column views.
// Row i of column c is dimension c of particle i; sub[s][c] is column c
// restricted to sub-filter s's m rows. All views alias the arena, so
// packing/unpacking the AoS boundary format touches only the arena.
type soaBuf struct {
	arena []float64
	cols  [][]float64   // dim columns, each N·m rows
	sub   [][][]float64 // sub[s][c] = cols[c][s*m : (s+1)*m]
}

func newSoaBuf(dim, groups, m int) *soaBuf {
	nm := groups * m
	b := &soaBuf{
		arena: make([]float64, dim*nm),
		cols:  make([][]float64, dim),
		sub:   make([][][]float64, groups),
	}
	for c := range b.cols {
		b.cols[c] = b.arena[c*nm : (c+1)*nm : (c+1)*nm]
	}
	for s := range b.sub {
		b.sub[s] = make([][]float64, dim)
		for c := range b.cols {
			b.sub[s][c] = b.cols[c][s*m : (s+1)*m : (s+1)*m]
		}
	}
	return b
}

// cut re-slices the per-sub-filter views to the given window partition
// (offs[s], lens[s] in rows). The arena and columns are untouched — only
// where each sub-filter's rows begin and end changes, which is what makes
// adaptive reallocation cheap: no particle storage moves here.
func (b *soaBuf) cut(offs, lens []int) {
	for s := range b.sub {
		o, l := offs[s], lens[s]
		for c := range b.cols {
			b.sub[s][c] = b.cols[c][o : o+l : o+l]
		}
	}
}

// Pipeline owns the device-resident state of a parallel distributed
// filter and launches the kernels. It is created by New and driven by
// Round; the filter layer (internal/filter.Parallel) wraps it.
//
// Steady-state rounds are allocation-free: particle storage is double
// buffered and swapped by pointer, every launch body and barrier-phased
// primitive is bound once at construction, and the estimate kernel
// returns a buffer owned by the pipeline (valid until the next round —
// callers that retain it must copy).
type Pipeline struct {
	dev *device.Device
	mdl model.Model
	cfg Config
	dim int

	// Global-memory buffers. Particle state is SoA double buffered
	// (cur holds the current generation; kernels write nxt and the
	// caller swaps); weights and the exchange outbox keep their flat
	// layouts — outbox records are AoS (dim+1 floats per particle), the
	// wire format the shard/cluster layers reflect.
	cur, nxt *soaBuf
	logw     []float64 // N·m accumulated log-weights
	outbox   []float64 // N·t·(dim+1) staged top-t particles (+ log-weight)
	poolSel  []int     // t selected pool entries (all-to-all)

	// Per-sub-filter random streams: a block Buffer refilled by the rand
	// kernel (the paper's dedicated PRNG kernel) and consumed by the
	// sampling and resampling kernels.
	bufs  []*rng.Buffer
	rands []*rng.Rand

	// Per-sub-filter vectorized model views. Native VecModels are
	// stateless and shared; the generic adapter carries scratch, so each
	// work-group gets its own instance.
	vms []model.VecModel

	// Host-side scratch reused across rounds.
	ll         []float64     // N·m per-round log-likelihoods
	vsrc, vdst [][][]float64 // per-sub-filter span views handed to VecModels
	heads      []float64     // N sorted block-head log-weights
	partial    []float64     // N·(dim+1) weighted partial sums
	estState   []float64     // dim estimate output, reused every round
	poolKeys   []float64     // N·t all-to-all pool sort keys
	poolIdx    []int         // N·t all-to-all pool sort permutation

	// Pre-bound barrier-phased primitives (one per sub-filter: groups
	// execute concurrently; plus dedicated instances for the single-group
	// estimate and all-to-all pool launches).
	scans    []*scan.Plan
	sorts    []*sortnet.Net
	estScan  *scan.Plan
	poolSort *sortnet.Net

	// nbrs caches the static topology's neighbor lists so the exchange
	// kernel does not recompute (and reallocate) them every round.
	nbrs [][]int

	// Adaptive allocation state: the per-sub-filter windows of the SoA
	// arena. winOff[s]/winLen[s] locate sub-filter s's rows; the windows
	// always partition the arena exactly (Σ winLen = SubFilters ×
	// ParticlesPer). Under the default uniform allocation winLen[s] ==
	// ParticlesPer for every s and the kernels behave exactly as before;
	// Reallocate resizes the windows in place. maxWin is the largest
	// window — the launch group size, so every window fits one group's
	// lanes. reallocs counts applied resizes (telemetry).
	winOff, winLen []int
	maxWin         int
	reallocs       int64

	bestSub int
	bestLW  float64

	// Launch bodies, bound once in New. The per-round inputs they read
	// (curU, curZ, curK, estMaxLW, estBest) are plain fields: launches
	// are synchronous, so writing them between launches is race-free.
	curU, curZ []float64
	curK       int
	estBest    int
	estMaxLW   float64

	fusedBody, randBody, sampleBody, sortBody, resampleBody device.KernelFunc
	estHeadBody, estMeanBody                                device.KernelFunc
	exchPubBody, exchPullBody, exchPoolBody, exchBcastBody  device.KernelFunc

	// Observability state (see telemetry.go): an optional span tracer,
	// a stride-gated filter-health sample, and the per-sub-filter
	// resample-policy decisions of the most recent resampling kernel.
	// All of it is read-only with respect to filter state, so golden
	// traces are unaffected.
	tracer        *telemetry.Tracer
	healthEvery   int
	round         int64
	lastHealth    telemetry.FilterHealth
	resampleFlags []uint8
	// essAtResample is each sub-filter's ESS fraction measured inside the
	// most recent round at the resample decision point — before the
	// resampler resets weights to uniform. The post-round log-weights lie
	// about degeneracy (an always-resample round always looks healthy);
	// this is the honest signal the adaptive allocator reads. One writer
	// per group slot, read host-side after the launch.
	essAtResample []float64
}

// New validates cfg and allocates the pipeline on dev.
func New(dev *device.Device, mdl model.Model, cfg Config, seed uint64) (*Pipeline, error) {
	if cfg.SubFilters <= 0 || cfg.ParticlesPer <= 0 {
		return nil, fmt.Errorf("kernels: invalid grid %d sub-filters × %d particles",
			cfg.SubFilters, cfg.ParticlesPer)
	}
	if cfg.Topology == nil {
		top, err := exchange.NewTopology(exchange.None, cfg.SubFilters)
		if err != nil {
			return nil, err
		}
		cfg.Topology = top
	}
	if cfg.Topology.Size() != cfg.SubFilters {
		return nil, fmt.Errorf("kernels: topology size %d != sub-filters %d",
			cfg.Topology.Size(), cfg.SubFilters)
	}
	if cfg.Topology.Scheme() == exchange.RandomPairs && cfg.ExchangeCount > 0 {
		return nil, fmt.Errorf("kernels: random-pairs exchange is dynamic per round and not supported by the device pipeline; use the sequential distributed filter")
	}
	if cfg.Policy == nil {
		cfg.Policy = resample.Always{}
	}
	incoming := cfg.Topology.MaxDegree() * cfg.ExchangeCount
	if cfg.Topology.Scheme() == exchange.AllToAll {
		incoming = cfg.ExchangeCount
	}
	if cfg.ExchangeCount > 0 && incoming >= cfg.ParticlesPer {
		return nil, fmt.Errorf("kernels: %d incoming particles >= sub-filter size %d",
			incoming, cfg.ParticlesPer)
	}
	if cfg.ExchangeCount > cfg.ParticlesPer {
		return nil, fmt.Errorf("kernels: exchange count %d > sub-filter size %d",
			cfg.ExchangeCount, cfg.ParticlesPer)
	}
	p := &Pipeline{dev: dev, mdl: mdl, cfg: cfg, dim: mdl.StateDim()}
	N, m := cfg.SubFilters, cfg.ParticlesPer
	n := N * m
	p.cur = newSoaBuf(p.dim, N, m)
	p.nxt = newSoaBuf(p.dim, N, m)
	p.logw = make([]float64, n)
	p.outbox = make([]float64, N*cfg.ExchangeCount*(p.dim+1))
	p.poolSel = make([]int, cfg.ExchangeCount)
	p.heads = make([]float64, N)
	p.partial = make([]float64, N*(p.dim+1))
	p.estState = make([]float64, p.dim)
	p.poolKeys = make([]float64, N*cfg.ExchangeCount)
	p.poolIdx = make([]int, N*cfg.ExchangeCount)
	p.ll = make([]float64, n)
	p.vsrc = make([][][]float64, N)
	p.vdst = make([][][]float64, N)
	p.bufs = make([]*rng.Buffer, N)
	p.rands = make([]*rng.Rand, N)
	p.vms = make([]model.VecModel, N)
	p.scans = make([]*scan.Plan, N)
	p.sorts = make([]*sortnet.Net, N)
	p.resampleFlags = make([]uint8, N)
	p.essAtResample = make([]float64, N)
	p.nbrs = make([][]int, N)
	p.winOff = make([]int, N)
	p.winLen = make([]int, N)
	for s := 0; s < N; s++ {
		p.winOff[s] = s * m
		p.winLen[s] = m
	}
	p.maxWin = m
	for s := 0; s < N; s++ {
		p.vsrc[s] = make([][]float64, p.dim)
		p.vdst[s] = make([][]float64, p.dim)
		p.vms[s] = model.Vectorize(mdl)
		p.scans[s] = scan.NewPlan()
		p.sorts[s] = sortnet.NewNet()
		p.nbrs[s] = cfg.Topology.Neighbors(nil, s)
	}
	p.estScan = scan.NewPlan()
	p.poolSort = sortnet.NewNet()
	p.bindBodies()
	p.Reset(seed)
	return p, nil
}

// bindBodies creates every launch body once, so steady-state rounds do
// not allocate closures (a body handed to Device.Launch escapes into the
// launch task; the tiny per-phase closures inside the group bodies are
// called through concrete *device.Group methods and stay on the stack).
func (p *Pipeline) bindBodies() {
	p.randBody = func(g *device.Group) { p.randGroup(g, g.ID()) }
	p.fusedBody = func(g *device.Group) {
		p.fusedGroup(g, g.ID(), p.curU, p.curZ, p.curK)
	}
	p.sampleBody = func(g *device.Group) {
		p.sampleGroup(g, g.ID(), p.curU, p.curZ, p.curK, p.cur, p.nxt)
	}
	p.sortBody = func(g *device.Group) { p.sortGroup(g, g.ID(), p.cur, p.nxt) }
	p.resampleBody = func(g *device.Group) { p.resampleGroup(g, g.ID()) }
	p.estHeadBody = func(g *device.Group) { p.estHeadGroup(g) }
	p.estMeanBody = func(g *device.Group) { p.estMeanGroup(g, g.ID()) }
	p.exchPubBody = func(g *device.Group) { p.exchPublishGroup(g, g.ID()) }
	p.exchPullBody = func(g *device.Group) { p.exchPullGroup(g, g.ID()) }
	p.exchPoolBody = func(g *device.Group) { p.exchPoolGroup(g) }
	p.exchBcastBody = func(g *device.Group) { p.exchBroadcastGroup(g, g.ID()) }
}

// Reset reseeds every stream and redraws the particle population from the
// model prior.
func (p *Pipeline) Reset(seed uint64) {
	// Words per round: ~2·dim per particle for sampling (Box-Muller via
	// Uint64) plus up to 4 for resampling draws, with headroom.
	words := p.cfg.ParticlesPer * (2*p.dim + 8)
	for s := 0; s < p.cfg.SubFilters; s++ {
		var src rng.BlockSource
		if p.cfg.Streams == "mtgp" {
			src = rng.NewMTGP(seed, s+1)
		} else {
			src = rng.NewPhiloxStream(seed, s+1)
		}
		p.bufs[s] = rng.NewBuffer(words, src)
		p.rands[s] = rng.New(p.bufs[s])
	}
	for s := 0; s < p.cfg.SubFilters; s++ {
		p.vms[s].InitVec(p.cur.sub[s], p.rands[s])
	}
	for i := range p.logw {
		p.logw[i] = 0
	}
	for i := range p.resampleFlags {
		p.resampleFlags[i] = 0
	}
	for i := range p.essAtResample {
		p.essAtResample[i] = 1 // fresh prior: fully healthy
	}
	p.round = 0
	p.lastHealth = telemetry.FilterHealth{}
	p.bestSub, p.bestLW = 0, math.Inf(-1)
}

// Config returns the validated configuration.
func (p *Pipeline) Config() Config { return p.cfg }

// Device returns the device the pipeline runs on.
func (p *Pipeline) Device() *device.Device { return p.dev }

// grid returns the one-group-per-sub-filter launch shape. The group size
// is the largest window so every sub-filter's particles fit its group's
// lanes; groups with smaller windows leave their tail lanes idle (the
// kernel bodies clamp their spans to the window length).
func (p *Pipeline) grid() device.Grid {
	return device.Grid{Groups: p.cfg.SubFilters, GroupSize: p.maxWin}
}

// groupLanes returns the work-group size the pipeline's launches need —
// the batch scheduler's partition key (pipelines sharing a grid must
// agree on it).
func (p *Pipeline) groupLanes() int { return p.maxWin }

// Round runs one full filtering round (all six kernels) for control u,
// measurement z, step index k, and returns the global best particle's
// state and log-weight. Each kernel is issued as its own global launch,
// exactly as in the paper's baseline; RoundFused is the faster,
// bit-identical alternative. The returned state slice is owned by the
// pipeline and overwritten by the next round — copy it to retain it.
func (p *Pipeline) Round(u, z []float64, k int) ([]float64, float64) {
	sp := p.tracer.Begin("filter", "round").Arg("k", int64(k))
	p.KernelRand()
	p.KernelSampleWeight(u, z, k)
	p.KernelSortLocal()
	best, lw := p.KernelEstimate()
	p.KernelExchange()
	p.KernelResample()
	sp.End()
	return best, lw
}

// RoundFused runs one full filtering round with the three group-local
// kernels (rand, sampling, local sort) fused into a single launch,
// collapsing their intermediate global barriers — which only ever
// synchronized independent sub-filters — into per-group sequencing. The
// estimate, exchange, and resampling kernels remain separate launches:
// they read data written by other work-groups, so the global barrier
// before each of them is semantically required.
//
// RoundFused consumes the per-sub-filter random streams in exactly the
// same order as Round and is bit-identical to it (asserted by the
// golden-trace tests); the profiler still sees per-phase entries under
// the same kernel names. The returned state slice is owned by the
// pipeline and overwritten by the next round — copy it to retain it.
func (p *Pipeline) RoundFused(u, z []float64, k int) ([]float64, float64) {
	sp := p.tracer.Begin("filter", "round").Arg("k", int64(k))
	p.curU, p.curZ, p.curK = u, z, k
	p.dev.LaunchFused(fusedPhases, p.grid(), p.fusedBody)
	// No buffer swap: the fused body chains cur → nxt → cur, leaving the
	// buffers exactly where Round's two swaps would.
	best, lw := p.KernelEstimate()
	p.KernelExchange()
	p.KernelResample()
	sp.End()
	return best, lw
}

// Best returns the sub-filter index and log-weight of the last estimate.
func (p *Pipeline) Best() (sub int, logw float64) { return p.bestSub, p.bestLW }

// Particles returns a copy of the current particle population in AoS
// layout (N·m rows of dim floats — the boundary format shared with
// checkpoints and exchange records). Mutations do not affect the
// pipeline; use SetParticles to write a population back.
func (p *Pipeline) Particles() []float64 {
	out := make([]float64, len(p.cur.arena))
	p.packInto(out)
	return out
}

// SetParticles overwrites the particle population from an AoS buffer of
// the shape Particles returns. It panics if the length does not match.
func (p *Pipeline) SetParticles(aos []float64) {
	if len(aos) != len(p.cur.arena) {
		panic(fmt.Sprintf("kernels: SetParticles length %d != %d", len(aos), len(p.cur.arena)))
	}
	p.unpackFrom(aos)
}

// packInto writes the current population into dst in AoS row-major order
// (particle-major, dimension-minor — the historical flat layout).
func (p *Pipeline) packInto(dst []float64) {
	dim := p.dim
	for c, col := range p.cur.cols {
		for i, v := range col {
			dst[i*dim+c] = v
		}
	}
}

// unpackFrom scatters an AoS buffer into the current SoA columns.
func (p *Pipeline) unpackFrom(src []float64) {
	dim := p.dim
	for c, col := range p.cur.cols {
		for i := range col {
			col[i] = src[i*dim+c]
		}
	}
}

// ReadParticle copies particle slot of sub-filter sub into dst (dim
// floats). It is the random-access read the cluster exchange layer uses
// in place of aliasing a flat buffer.
func (p *Pipeline) ReadParticle(sub, slot int, dst []float64) {
	for d, col := range p.cur.sub[sub] {
		dst[d] = col[slot]
	}
}

// WriteParticle overwrites particle slot of sub-filter sub from src (dim
// floats).
func (p *Pipeline) WriteParticle(sub, slot int, src []float64) {
	for d, col := range p.cur.sub[sub] {
		col[slot] = src[d]
	}
}

// LogWeights exposes the current log-weight buffer for tests.
func (p *Pipeline) LogWeights() []float64 { return p.logw }
