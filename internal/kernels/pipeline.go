// Package kernels implements the six computational kernels of the
// paper's many-core distributed particle filter (§VI) on the device
// substrate:
//
//  1. Pseudo-random number generation  ("rand")
//  2. Sampling + importance weighting  ("sampling")
//  3. Local sorting                    ("local sort")
//  4. Global estimate                  ("global estimate")
//  5. Particle exchange                ("exchange")
//  6. Resampling                       ("resampling")
//
// One work-group processes one sub-filter and one lane one particle,
// exactly the paper's mapping ("each GPGPU thread processes one particle
// and each work group one sub-filter"). Particle state is stored in
// global memory in AoS layout (§VI: SoA "will not result in efficient
// transfers" for >16-byte particles); weights and sort indices live in
// local memory during sorting; and reorderings prefer non-contiguous
// reads over non-contiguous writes, as the paper prescribes.
package kernels

import (
	"fmt"
	"math"

	"esthera/internal/device"
	"esthera/internal/exchange"
	"esthera/internal/model"
	"esthera/internal/resample"
	"esthera/internal/rng"
	"esthera/internal/telemetry"
)

// Algo selects the resampling kernel (Fig. 5 compares the two).
type Algo int

// Resampling kernel algorithms.
const (
	// AlgoRWS is Roulette Wheel Selection: parallel prefix sum over the
	// local weights, then one binary search per lane.
	AlgoRWS Algo = iota
	// AlgoVose is Vose's alias method with the paper's in-place
	// small/large table construction.
	AlgoVose
	// AlgoSystematic is systematic resampling adapted to the lane model
	// (a toolkit extension beyond the paper's two): one shared uniform
	// offset, each lane binary-searches its own equally spaced pointer.
	// Fully parallel like RWS but with a single random draw per
	// sub-filter and minimal resampling variance.
	AlgoSystematic
)

// AlgoByName maps a flag-friendly name ("rws", "vose", "systematic"; ""
// defaults to rws) to a resampling kernel.
func AlgoByName(name string) (Algo, error) {
	switch name {
	case "", "rws":
		return AlgoRWS, nil
	case "vose":
		return AlgoVose, nil
	case "systematic":
		return AlgoSystematic, nil
	}
	return 0, fmt.Errorf("kernels: unknown resampler %q (device pipeline supports rws, vose, systematic)", name)
}

// String returns the algorithm name.
func (a Algo) String() string {
	switch a {
	case AlgoVose:
		return "vose"
	case AlgoSystematic:
		return "systematic"
	}
	return "rws"
}

// Config parameterizes a Pipeline (the Table I parameters plus kernel
// choices).
type Config struct {
	SubFilters    int
	ParticlesPer  int
	ExchangeCount int
	Topology      *exchange.Topology
	Resampler     Algo
	// Policy defaults to Always; it is evaluated per sub-filter inside
	// the resampling kernel on the local weights, so no global reduction
	// is needed (the real-time property §III-A argues for).
	Policy resample.Policy
	// Streams selects the per-sub-filter generator family: "philox"
	// (default) or "mtgp".
	Streams string
	// MeanEstimate switches the global-estimate kernel from the paper's
	// default max-weight particle to the weighted average (§VI-D: "the
	// reduction operator can compute the particle with the highest
	// weight, a weighted average, or any other associative operator").
	MeanEstimate bool
}

// Pipeline owns the device-resident state of a parallel distributed
// filter and launches the kernels. It is created by New and driven by
// Round; the filter layer (internal/filter.Parallel) wraps it.
type Pipeline struct {
	dev *device.Device
	mdl model.Model
	cfg Config
	dim int

	// Global-memory buffers.
	x, x2   []float64 // N·m·dim particle state, AoS, double buffered
	logw    []float64 // N·m accumulated log-weights
	outbox  []float64 // N·t·(dim+1) staged top-t particles (+ log-weight)
	poolSel []int     // t selected pool entries (all-to-all)

	// Per-sub-filter random streams: a block Buffer refilled by the rand
	// kernel (the paper's dedicated PRNG kernel) and consumed by the
	// sampling and resampling kernels.
	bufs  []*rng.Buffer
	rands []*rng.Rand

	// Host-side scratch reused across rounds by the estimate kernels.
	heads   []float64 // N sorted block-head log-weights
	partial []float64 // N·(dim+1) weighted partial sums

	// nbrs caches the static topology's neighbor lists so the exchange
	// kernel does not recompute (and reallocate) them every round.
	nbrs [][]int

	bestSub int
	bestLW  float64

	// Observability state (see telemetry.go): an optional span tracer,
	// a stride-gated filter-health sample, and the per-sub-filter
	// resample-policy decisions of the most recent resampling kernel.
	// All of it is read-only with respect to filter state, so golden
	// traces are unaffected.
	tracer        *telemetry.Tracer
	healthEvery   int
	round         int64
	lastHealth    telemetry.FilterHealth
	resampleFlags []uint8
}

// New validates cfg and allocates the pipeline on dev.
func New(dev *device.Device, mdl model.Model, cfg Config, seed uint64) (*Pipeline, error) {
	if cfg.SubFilters <= 0 || cfg.ParticlesPer <= 0 {
		return nil, fmt.Errorf("kernels: invalid grid %d sub-filters × %d particles",
			cfg.SubFilters, cfg.ParticlesPer)
	}
	if cfg.Topology == nil {
		top, err := exchange.NewTopology(exchange.None, cfg.SubFilters)
		if err != nil {
			return nil, err
		}
		cfg.Topology = top
	}
	if cfg.Topology.Size() != cfg.SubFilters {
		return nil, fmt.Errorf("kernels: topology size %d != sub-filters %d",
			cfg.Topology.Size(), cfg.SubFilters)
	}
	if cfg.Topology.Scheme() == exchange.RandomPairs && cfg.ExchangeCount > 0 {
		return nil, fmt.Errorf("kernels: random-pairs exchange is dynamic per round and not supported by the device pipeline; use the sequential distributed filter")
	}
	if cfg.Policy == nil {
		cfg.Policy = resample.Always{}
	}
	incoming := cfg.Topology.MaxDegree() * cfg.ExchangeCount
	if cfg.Topology.Scheme() == exchange.AllToAll {
		incoming = cfg.ExchangeCount
	}
	if cfg.ExchangeCount > 0 && incoming >= cfg.ParticlesPer {
		return nil, fmt.Errorf("kernels: %d incoming particles >= sub-filter size %d",
			incoming, cfg.ParticlesPer)
	}
	if cfg.ExchangeCount > cfg.ParticlesPer {
		return nil, fmt.Errorf("kernels: exchange count %d > sub-filter size %d",
			cfg.ExchangeCount, cfg.ParticlesPer)
	}
	p := &Pipeline{dev: dev, mdl: mdl, cfg: cfg, dim: mdl.StateDim()}
	n := cfg.SubFilters * cfg.ParticlesPer
	p.x = make([]float64, n*p.dim)
	p.x2 = make([]float64, n*p.dim)
	p.logw = make([]float64, n)
	p.outbox = make([]float64, cfg.SubFilters*cfg.ExchangeCount*(p.dim+1))
	p.poolSel = make([]int, cfg.ExchangeCount)
	p.heads = make([]float64, cfg.SubFilters)
	p.partial = make([]float64, cfg.SubFilters*(p.dim+1))
	p.bufs = make([]*rng.Buffer, cfg.SubFilters)
	p.rands = make([]*rng.Rand, cfg.SubFilters)
	p.resampleFlags = make([]uint8, cfg.SubFilters)
	p.nbrs = make([][]int, cfg.SubFilters)
	for s := range p.nbrs {
		p.nbrs[s] = cfg.Topology.Neighbors(nil, s)
	}
	p.Reset(seed)
	return p, nil
}

// Reset reseeds every stream and redraws the particle population from the
// model prior.
func (p *Pipeline) Reset(seed uint64) {
	// Words per round: ~2·dim per particle for sampling (Box-Muller via
	// Uint64) plus up to 4 for resampling draws, with headroom.
	words := p.cfg.ParticlesPer * (2*p.dim + 8)
	for s := 0; s < p.cfg.SubFilters; s++ {
		var src rng.BlockSource
		if p.cfg.Streams == "mtgp" {
			src = rng.NewMTGP(seed, s+1)
		} else {
			src = rng.NewPhiloxStream(seed, s+1)
		}
		p.bufs[s] = rng.NewBuffer(words, src)
		p.rands[s] = rng.New(p.bufs[s])
	}
	for s := 0; s < p.cfg.SubFilters; s++ {
		base := s * p.cfg.ParticlesPer * p.dim
		for i := 0; i < p.cfg.ParticlesPer; i++ {
			p.mdl.InitParticle(p.x[base+i*p.dim:base+(i+1)*p.dim], p.rands[s])
		}
	}
	for i := range p.logw {
		p.logw[i] = 0
	}
	for i := range p.resampleFlags {
		p.resampleFlags[i] = 0
	}
	p.round = 0
	p.lastHealth = telemetry.FilterHealth{}
	p.bestSub, p.bestLW = 0, math.Inf(-1)
}

// Config returns the validated configuration.
func (p *Pipeline) Config() Config { return p.cfg }

// Device returns the device the pipeline runs on.
func (p *Pipeline) Device() *device.Device { return p.dev }

// grid returns the one-group-per-sub-filter launch shape.
func (p *Pipeline) grid() device.Grid {
	return device.Grid{Groups: p.cfg.SubFilters, GroupSize: p.cfg.ParticlesPer}
}

// Round runs one full filtering round (all six kernels) for control u,
// measurement z, step index k, and returns the global best particle's
// state (copied) and log-weight. Each kernel is issued as its own global
// launch, exactly as in the paper's baseline; RoundFused is the faster,
// bit-identical alternative.
func (p *Pipeline) Round(u, z []float64, k int) ([]float64, float64) {
	sp := p.tracer.Begin("filter", "round").Arg("k", int64(k))
	p.KernelRand()
	p.KernelSampleWeight(u, z, k)
	p.KernelSortLocal()
	best, lw := p.KernelEstimate()
	p.KernelExchange()
	p.KernelResample()
	sp.End()
	return best, lw
}

// RoundFused runs one full filtering round with the three group-local
// kernels (rand, sampling, local sort) fused into a single launch,
// collapsing their intermediate global barriers — which only ever
// synchronized independent sub-filters — into per-group sequencing. The
// estimate, exchange, and resampling kernels remain separate launches:
// they read data written by other work-groups, so the global barrier
// before each of them is semantically required.
//
// RoundFused consumes the per-sub-filter random streams in exactly the
// same order as Round and is bit-identical to it (asserted by the
// golden-trace tests); the profiler still sees per-phase entries under
// the same kernel names.
func (p *Pipeline) RoundFused(u, z []float64, k int) ([]float64, float64) {
	sp := p.tracer.Begin("filter", "round").Arg("k", int64(k))
	p.dev.LaunchFused(fusedPhases, p.grid(), func(g *device.Group) {
		p.fusedGroup(g, g.ID(), u, z, k)
	})
	// No buffer swap: the fused body chains x → x2 → x, leaving the
	// buffers exactly where Round's two swaps would.
	best, lw := p.KernelEstimate()
	p.KernelExchange()
	p.KernelResample()
	sp.End()
	return best, lw
}

// Best returns the sub-filter index and log-weight of the last estimate.
func (p *Pipeline) Best() (sub int, logw float64) { return p.bestSub, p.bestLW }

// Particles exposes the current particle buffer (N·m·dim) for tests.
func (p *Pipeline) Particles() []float64 { return p.x }

// LogWeights exposes the current log-weight buffer for tests.
func (p *Pipeline) LogWeights() []float64 { return p.logw }
