package kernels

import (
	"testing"

	"esthera/internal/telemetry"
)

// TestTelemetryLeavesTraceBitIdentical is the observability golden-trace
// test: a pipeline with tracing enabled and health sampled every round
// must produce bit-identical estimates, log-weights, and particle
// buffers to an uninstrumented twin. Telemetry reads filter state and
// writes only telemetry-side buffers; this pins that contract for both
// the unfused and fused rounds.
func TestTelemetryLeavesTraceBitIdentical(t *testing.T) {
	for _, fused := range []bool{false, true} {
		name := map[bool]string{false: "unfused", true: "fused"}[fused]
		t.Run(name, func(t *testing.T) {
			bare, traced := fusedTracePair(t, AlgoRWS, false, 11)
			tr := telemetry.New(telemetry.Config{})
			tr.SetEnabled(true)
			traced.Device().SetTracer(tr)
			traced.SetTracer(tr)
			traced.SetHealthEvery(1)

			for k := 1; k <= 12; k++ {
				z := []float64{0.4*float64(k) - 2}
				var sb, st []float64
				var lb, lt float64
				if fused {
					sb, lb = bare.RoundFused(nil, z, k)
					st, lt = traced.RoundFused(nil, z, k)
				} else {
					sb, lb = bare.Round(nil, z, k)
					st, lt = traced.Round(nil, z, k)
				}
				if lb != lt {
					t.Fatalf("step %d: log-weight diverged under telemetry: %v vs %v", k, lb, lt)
				}
				for d := range sb {
					if sb[d] != st[d] {
						t.Fatalf("step %d: estimate[%d] diverged under telemetry: %v vs %v", k, d, sb[d], st[d])
					}
				}
				for i, w := range bare.LogWeights() {
					if w != traced.LogWeights()[i] {
						t.Fatalf("step %d: logw[%d] diverged under telemetry: %v vs %v", k, i, w, traced.LogWeights()[i])
					}
				}
				for i, x := range bare.Particles() {
					if x != traced.Particles()[i] {
						t.Fatalf("step %d: particle[%d] diverged under telemetry: %v vs %v", k, i, x, traced.Particles()[i])
					}
				}
			}

			evs := tr.Drain()
			var rounds int
			for _, ev := range evs {
				if ev.Cat == "filter" && ev.Name == "round" {
					rounds++
				}
			}
			if rounds != 12 {
				t.Errorf("recorded %d round spans, want 12", rounds)
			}
			h := traced.LastHealth()
			if h.Round != 12 {
				t.Errorf("last health sample at round %d, want 12", h.Round)
			}
			if h.Particles != 8*16 {
				t.Errorf("health particles %d, want %d", h.Particles, 8*16)
			}
			if h.ESS <= 0 || h.ESS > float64(h.Particles) {
				t.Errorf("ESS %v out of (0, %d]", h.ESS, h.Particles)
			}
			if h.MaxWeightRatio < 1 {
				t.Errorf("max weight ratio %v, want >= 1", h.MaxWeightRatio)
			}
		})
	}
}

// TestHealthStrideGatesSampling asserts the stride arithmetic: with
// healthEvery=3 over 10 rounds only rounds 3, 6, 9 sample, and with
// sampling disabled LastHealth stays zero.
func TestHealthStrideGatesSampling(t *testing.T) {
	p, q := fusedTracePair(t, AlgoRWS, false, 5)
	p.SetHealthEvery(3)
	for k := 1; k <= 10; k++ {
		z := []float64{float64(k) * 0.2}
		p.RoundFused(nil, z, k)
		q.RoundFused(nil, z, k)
		want := int64(k / 3 * 3)
		if got := p.LastHealth().Round; got != want {
			t.Fatalf("after round %d: sampled at round %d, want %d", k, got, want)
		}
	}
	if q.LastHealth().Round != 0 {
		t.Errorf("unsampled pipeline has health at round %d", q.LastHealth().Round)
	}
	if p.Rounds() != 10 || q.Rounds() != 10 {
		t.Errorf("round counters %d/%d, want 10/10", p.Rounds(), q.Rounds())
	}
}

// TestResetClearsTelemetryState asserts Reset rewinds the round counter
// and the health sample along with the filter state.
func TestResetClearsTelemetryState(t *testing.T) {
	p, _ := fusedTracePair(t, AlgoRWS, false, 3)
	p.SetHealthEvery(1)
	for k := 1; k <= 4; k++ {
		p.RoundFused(nil, []float64{0.1}, k)
	}
	if p.Rounds() != 4 || p.LastHealth().Round != 4 {
		t.Fatalf("pre-reset rounds=%d health.Round=%d", p.Rounds(), p.LastHealth().Round)
	}
	p.Reset(3)
	if p.Rounds() != 0 {
		t.Errorf("post-reset rounds %d, want 0", p.Rounds())
	}
	if p.LastHealth() != (telemetry.FilterHealth{}) {
		t.Errorf("post-reset health %+v, want zero", p.LastHealth())
	}
}
