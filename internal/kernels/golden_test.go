package kernels

import (
	"bufio"
	"encoding/binary"
	"flag"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"esthera/internal/device"
	"esthera/internal/exchange"
	"esthera/internal/model"
	"esthera/internal/model/arm"
)

// -update-golden regenerates testdata/golden_fused.txt from the current
// tree. Only run it on a tree whose output is known-good: the recorded
// hashes are the bit-exact contract every layout or RNG refactor must
// preserve.
var updateGolden = flag.Bool("update-golden", false, "rewrite the pinned fused-round trace hashes")

const goldenFile = "testdata/golden_fused.txt"

// goldenModel builds a fresh instance of one of the pinned models. Every
// model that ships a vectorized (VecModel) implementation must be listed
// here so the SoA/vector path stays trace-locked against these pins.
func goldenModel(t *testing.T, name string) model.Model {
	t.Helper()
	switch name {
	case "ungm":
		return model.NewUNGM()
	case "bearings":
		return model.NewBearings()
	case "arm":
		m, _, err := arm.NewScenario(arm.Config{}, arm.DefaultLemniscate())
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	t.Fatalf("unknown golden model %q", name)
	return nil
}

// goldenTraceHash runs 10 fused rounds with a deterministic synthetic
// measurement sequence and folds every observable filter output — the
// per-step estimate, best log-weight, best sub-filter, and the full
// log-weight and particle buffers — into one FNV-1a 64 hash. Any
// draw-order, accumulation-order, or layout drift changes the hash.
func goldenTraceHash(t *testing.T, modelName string, algo Algo, mean bool, seed uint64) uint64 {
	t.Helper()
	mdl := goldenModel(t, modelName)
	dev := device.New(device.Config{Workers: 4, LocalMemBytes: -1})
	top, err := exchange.NewTopology(exchange.Ring, 8)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(dev, mdl, Config{
		SubFilters:    8,
		ParticlesPer:  16,
		ExchangeCount: 1,
		Topology:      top,
		Resampler:     algo,
		MeanEstimate:  mean,
	}, seed)
	if err != nil {
		t.Fatal(err)
	}
	h := fnv.New64a()
	var buf [8]byte
	put := func(v float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	u := make([]float64, mdl.ControlDim())
	z := make([]float64, mdl.MeasurementDim())
	for k := 1; k <= 10; k++ {
		for j := range u {
			u[j] = 0.05 * float64(k+j)
		}
		for j := range z {
			z[j] = 0.3*float64(k) - 0.1*float64(j) - 1
		}
		state, lw := p.RoundFused(u, z, k)
		for _, v := range state {
			put(v)
		}
		put(lw)
		sub, _ := p.Best()
		put(float64(sub))
		for _, v := range p.LogWeights() {
			put(v)
		}
		for _, v := range p.Particles() {
			put(v)
		}
	}
	return h.Sum64()
}

func goldenKeys() []string {
	var keys []string
	for _, m := range []string{"ungm", "bearings", "arm"} {
		for _, algo := range []Algo{AlgoRWS, AlgoVose} {
			for _, seed := range []uint64{1, 2, 3} {
				keys = append(keys, fmt.Sprintf("%s/%s/seed=%d", m, algo, seed))
			}
		}
		// Metropolis pins cover both estimate reductions (max and mean):
		// the collective-free resampler replaces the local sort with a
		// top-t selection, so its trace is locked separately under each
		// estimate path.
		for _, variant := range []string{"metropolis", "metropolis+mean"} {
			for _, seed := range []uint64{1, 2, 3} {
				keys = append(keys, fmt.Sprintf("%s/%s/seed=%d", m, variant, seed))
			}
		}
	}
	return keys
}

func parseGoldenKey(t *testing.T, key string) (modelName string, algo Algo, mean bool, seed uint64) {
	t.Helper()
	parts := strings.Split(key, "/")
	if len(parts) != 3 {
		t.Fatalf("malformed golden key %q", key)
	}
	algoName := parts[1]
	if v, ok := strings.CutSuffix(algoName, "+mean"); ok {
		algoName, mean = v, true
	}
	algo, err := AlgoByName(algoName)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fmt.Sscanf(parts[2], "seed=%d", &seed); err != nil {
		t.Fatalf("malformed golden key %q: %v", key, err)
	}
	return parts[0], algo, mean, seed
}

func readGoldenPins(t *testing.T) map[string]uint64 {
	t.Helper()
	f, err := os.Open(goldenFile)
	if err != nil {
		t.Fatalf("no golden pins recorded (run with -update-golden on a known-good tree): %v", err)
	}
	defer f.Close()
	pins := map[string]uint64{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var key string
		var hash uint64
		if _, err := fmt.Sscanf(line, "%s %x", &key, &hash); err != nil {
			t.Fatalf("malformed golden pin line %q: %v", line, err)
		}
		pins[key] = hash
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return pins
}

// TestFusedGoldenPins locks the fused round's output for every model
// with a vectorized implementation (arm, UNGM, bearings) to hashes
// recorded before the SoA refactor. Unlike TestFusedRoundBitIdentical —
// which only compares the fused round against the unfused one and would
// accept a change that shifted both — these pins are absolute: the
// refactored pipeline must reproduce the pre-refactor byte stream
// exactly, seed for seed, for both RWS and Vose resampling.
func TestFusedGoldenPins(t *testing.T) {
	keys := goldenKeys()
	if *updateGolden {
		var sb strings.Builder
		sb.WriteString("# Pinned FNV-1a 64 hashes of 10 fused rounds (estimate, best\n")
		sb.WriteString("# log-weight, best sub-filter, log-weights, particles per step).\n")
		sb.WriteString("# Regenerate only from a known-good tree: go test -run TestFusedGoldenPins -update-golden ./internal/kernels\n")
		for _, key := range keys {
			m, algo, mean, seed := parseGoldenKey(t, key)
			fmt.Fprintf(&sb, "%s %016x\n", key, goldenTraceHash(t, m, algo, mean, seed))
		}
		if err := os.MkdirAll(filepath.Dir(goldenFile), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenFile, []byte(sb.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d pins", goldenFile, len(keys))
		return
	}
	pins := readGoldenPins(t)
	var missing []string
	for _, key := range keys {
		if _, ok := pins[key]; !ok {
			missing = append(missing, key)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		t.Fatalf("golden pins missing for %v (run -update-golden on a known-good tree)", missing)
	}
	for _, key := range keys {
		key := key
		t.Run(key, func(t *testing.T) {
			m, algo, mean, seed := parseGoldenKey(t, key)
			got := goldenTraceHash(t, m, algo, mean, seed)
			if got != pins[key] {
				t.Fatalf("fused-round trace drifted: hash %016x, pinned %016x — the round is no longer bit-identical to the pre-refactor pipeline", got, pins[key])
			}
		})
	}
}
