package kernels

import (
	"fmt"

	"esthera/internal/rng"
)

// Snapshot is a deep copy of a pipeline's mutable state: the particle
// population, accumulated log-weights, last estimate bookkeeping, and
// the exact position of every per-sub-filter random stream. A pipeline
// restored from a Snapshot continues bit-identically to the pipeline the
// snapshot was taken from — the property the serve layer's
// checkpoint/restore relies on.
//
// The shape fields (SubFilters, ParticlesPer, Dim, Streams family) must
// match the restoring pipeline's configuration; Restore validates them.
type Snapshot struct {
	SubFilters   int       `json:"sub_filters"`
	ParticlesPer int       `json:"particles_per"`
	Dim          int       `json:"dim"`
	X            []float64 `json:"-"` // particle state, AoS (serialized out-of-band: may be large and must stay bit-exact)
	LogW         []float64 `json:"-"`
	BestSub      int       `json:"best_sub"`
	BestLW       float64   `json:"-"`
	// Windows is the per-sub-filter window partition when the adaptive
	// allocator has resized it; nil means uniform (ParticlesPer each), so
	// uniform pipelines serialize byte-identically to pre-adaptive ones.
	Windows []int       `json:"windows,omitempty"`
	Rands   []rng.State `json:"rands"`
}

// Snapshot captures the pipeline's current state. It must not be called
// concurrently with Round/Kernel* on the same pipeline.
func (p *Pipeline) Snapshot() *Snapshot {
	s := &Snapshot{
		SubFilters:   p.cfg.SubFilters,
		ParticlesPer: p.cfg.ParticlesPer,
		Dim:          p.dim,
		X:            p.Particles(),
		LogW:         append([]float64(nil), p.logw...),
		BestSub:      p.bestSub,
		BestLW:       p.bestLW,
		Rands:        make([]rng.State, p.cfg.SubFilters),
	}
	if !p.uniformWindows() {
		s.Windows = append([]int(nil), p.winLen...)
	}
	for i, r := range p.rands {
		s.Rands[i] = r.SaveState()
	}
	return s
}

// Restore overwrites the pipeline's state from a snapshot taken from a
// pipeline with the same configuration. It must not be called
// concurrently with Round/Kernel* on the same pipeline.
func (p *Pipeline) Restore(s *Snapshot) error {
	if s == nil {
		return fmt.Errorf("kernels: nil snapshot")
	}
	if s.SubFilters != p.cfg.SubFilters || s.ParticlesPer != p.cfg.ParticlesPer || s.Dim != p.dim {
		return fmt.Errorf("kernels: snapshot shape %d×%d (dim %d) does not match pipeline %d×%d (dim %d)",
			s.SubFilters, s.ParticlesPer, s.Dim, p.cfg.SubFilters, p.cfg.ParticlesPer, p.dim)
	}
	if len(s.X) != len(p.cur.arena) || len(s.LogW) != len(p.logw) {
		return fmt.Errorf("kernels: snapshot buffers %d/%d do not match pipeline %d/%d",
			len(s.X), len(s.LogW), len(p.cur.arena), len(p.logw))
	}
	if len(s.Rands) != len(p.rands) {
		return fmt.Errorf("kernels: snapshot has %d streams, pipeline %d", len(s.Rands), len(p.rands))
	}
	if s.BestSub < 0 || s.BestSub >= p.cfg.SubFilters {
		return fmt.Errorf("kernels: snapshot best sub-filter %d out of range", s.BestSub)
	}
	if s.Windows != nil {
		if err := p.validateWindows(s.Windows); err != nil {
			return fmt.Errorf("kernels: snapshot windows: %w", err)
		}
	}
	// Validate every stream before mutating anything, so a malformed
	// snapshot cannot leave the pipeline half-restored.
	saved := make([]rng.State, len(p.rands))
	for i, r := range p.rands {
		saved[i] = r.SaveState()
	}
	for i, r := range p.rands {
		if err := r.RestoreState(s.Rands[i]); err != nil {
			for j := 0; j <= i; j++ {
				_ = p.rands[j].RestoreState(saved[j])
			}
			return fmt.Errorf("kernels: stream %d: %w", i, err)
		}
	}
	// Install the snapshot's window partition (nil = uniform) before the
	// state lands: Snapshot.X rows are in arena order, which the windows
	// define. unpackFrom itself is window-agnostic (whole columns), so
	// only the sub-filter views need re-cutting.
	if s.Windows != nil {
		p.applyWindows(s.Windows)
	} else if !p.uniformWindows() {
		uni := make([]int, p.cfg.SubFilters)
		for i := range uni {
			uni[i] = p.cfg.ParticlesPer
		}
		p.applyWindows(uni)
	}
	p.unpackFrom(s.X)
	copy(p.logw, s.LogW)
	p.bestSub, p.bestLW = s.BestSub, s.BestLW
	return nil
}
