package kernels_test

import (
	"testing"

	"esthera/internal/device"
	"esthera/internal/exchange"
	"esthera/internal/kernels"
	"esthera/internal/model"
)

func newPipe(t testing.TB, dev *device.Device, sub, per int, seed uint64) *kernels.Pipeline {
	t.Helper()
	m := model.NewUNGM()
	top, err := exchange.NewTopology(exchange.Ring, sub)
	if err != nil {
		t.Fatal(err)
	}
	p, err := kernels.New(dev, m, kernels.Config{
		SubFilters:    sub,
		ParticlesPer:  per,
		ExchangeCount: 1,
		Topology:      top,
	}, seed)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestRoundBatchMatchesSequential steps identical pipelines through a
// merged batch launch and through plain sequential rounds and requires
// bit-identical estimates and particle populations: batching is a
// scheduling optimization, never an algorithmic change.
func TestRoundBatchMatchesSequential(t *testing.T) {
	dev := device.New(device.Config{Workers: 4, LocalMemBytes: -1})
	const sessions = 5
	seq := make([]*kernels.Pipeline, sessions)
	bat := make([]*kernels.Pipeline, sessions)
	for i := range seq {
		seed := uint64(100 + i)
		seq[i] = newPipe(t, dev, 8, 16, seed)
		bat[i] = newPipe(t, dev, 8, 16, seed)
	}
	u := []float64{}
	for k := 1; k <= 10; k++ {
		z := []float64{float64(k) * 0.3}
		batch := make([]*kernels.BatchRound, sessions)
		for i := range batch {
			batch[i] = &kernels.BatchRound{P: bat[i], U: u, Z: z, K: k}
		}
		if err := kernels.RoundBatch(dev, batch); err != nil {
			t.Fatal(err)
		}
		for i := range seq {
			state, lw := seq[i].Round(u, z, k)
			if lw != batch[i].LogW {
				t.Fatalf("step %d session %d: log-weight %v (seq) != %v (batch)", k, i, lw, batch[i].LogW)
			}
			for d := range state {
				if state[d] != batch[i].State[d] {
					t.Fatalf("step %d session %d dim %d: %v != %v", k, i, d, state[d], batch[i].State[d])
				}
			}
		}
	}
	for i := range seq {
		a, b := seq[i].Particles(), bat[i].Particles()
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("session %d particle word %d diverged", i, j)
			}
		}
	}
}

// TestRoundBatchMixedGroupSizes verifies the partition path: pipelines
// with different sub-filter sizes share a batch but not a grid.
func TestRoundBatchMixedGroupSizes(t *testing.T) {
	dev := device.New(device.Config{Workers: 4, LocalMemBytes: -1})
	a := newPipe(t, dev, 8, 16, 1)
	b := newPipe(t, dev, 4, 32, 2)
	ref := newPipe(t, dev, 4, 32, 2)
	u := []float64{}
	for k := 1; k <= 5; k++ {
		z := []float64{0.7}
		batch := []*kernels.BatchRound{
			{P: a, U: u, Z: z, K: k},
			{P: b, U: u, Z: z, K: k},
		}
		if err := kernels.RoundBatch(dev, batch); err != nil {
			t.Fatal(err)
		}
		state, lw := ref.Round(u, z, k)
		if lw != batch[1].LogW || state[0] != batch[1].State[0] {
			t.Fatalf("step %d: mixed-size batch diverged from sequential", k)
		}
	}
}

// TestRoundBatchRejectsDuplicates ensures one session cannot have two
// rounds coalesced into a single batch.
func TestRoundBatchRejectsDuplicates(t *testing.T) {
	dev := device.New(device.Config{Workers: 2, LocalMemBytes: -1})
	p := newPipe(t, dev, 4, 16, 1)
	batch := []*kernels.BatchRound{
		{P: p, Z: []float64{0}, K: 1},
		{P: p, Z: []float64{0}, K: 2},
	}
	if err := kernels.RoundBatch(dev, batch); err == nil {
		t.Fatal("duplicate pipeline accepted")
	}
}

// TestSnapshotRestoreResumesIdentically checkpoints a pipeline mid-run,
// keeps stepping the original, then restores the snapshot into a fresh
// pipeline and requires the two estimate series to be bit-identical.
func TestSnapshotRestoreResumesIdentically(t *testing.T) {
	dev := device.New(device.Config{Workers: 2, LocalMemBytes: -1})
	p := newPipe(t, dev, 8, 16, 7)
	u := []float64{}
	for k := 1; k <= 6; k++ {
		p.Round(u, []float64{float64(k)}, k)
	}
	snap := p.Snapshot()

	q := newPipe(t, dev, 8, 16, 999) // different seed: state fully overwritten by Restore
	if err := q.Restore(snap); err != nil {
		t.Fatal(err)
	}
	for k := 7; k <= 16; k++ {
		z := []float64{float64(k)}
		ws, wlw := p.Round(u, z, k)
		gs, glw := q.Round(u, z, k)
		if wlw != glw {
			t.Fatalf("step %d: restored log-weight %v != %v", k, glw, wlw)
		}
		for d := range ws {
			if ws[d] != gs[d] {
				t.Fatalf("step %d dim %d: restored %v != %v", k, d, gs[d], ws[d])
			}
		}
	}
}

// TestRestoreRejectsShapeMismatch ensures a snapshot cannot be restored
// into a differently shaped pipeline.
func TestRestoreRejectsShapeMismatch(t *testing.T) {
	dev := device.New(device.Config{Workers: 2, LocalMemBytes: -1})
	p := newPipe(t, dev, 8, 16, 1)
	q := newPipe(t, dev, 4, 16, 1)
	if err := q.Restore(p.Snapshot()); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

// TestRoundBatchSteadyStateAllocs pins the batched serving path's fixed
// steady-state cost: a persistent Batcher driving reused BatchRound
// entries performs zero heap allocations per round. This is the
// regression the Batcher refactor removed — the one-shot RoundBatch
// wrapper rebuilt its partition maps, group tables, and launch closures
// on every round, which is pure overhead next to the sequential path
// (whose rounds are allocation-free) and erased the batched path's win.
func TestRoundBatchSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates on allocation-free paths")
	}
	dev := device.New(device.Config{LocalMemBytes: -1})
	defer dev.Close()
	const sessions = 4
	batcher := kernels.NewBatcher(dev)
	batch := make([]*kernels.BatchRound, sessions)
	for i := range batch {
		batch[i] = &kernels.BatchRound{P: newPipe(t, dev, 4, 32, uint64(i+1))}
	}
	k := 0
	z := []float64{0}
	round := func() {
		k++
		z[0] = float64(k % 7)
		for _, e := range batch {
			e.Z = z
			e.K = k
		}
		if err := batcher.Round(batch); err != nil {
			t.Fatal(err)
		}
	}
	// Warm up: first rounds grow the partition tables and the entries'
	// State buffers to their steady-state capacities.
	for i := 0; i < 3; i++ {
		round()
	}
	if allocs := testing.AllocsPerRun(10, round); allocs != 0 {
		t.Fatalf("steady-state batched round allocates %.1f objects/round, want 0", allocs)
	}
}
