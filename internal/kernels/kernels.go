package kernels

import (
	"math"

	"esthera/internal/device"
	"esthera/internal/exchange"
	"esthera/internal/scan"
	"esthera/internal/sortnet"
)

// KernelRand is kernel 1 (§VI-A): each sub-filter's block buffer is
// refilled from its private stream — the work the paper isolates in a
// dedicated MTGP kernel so the sampling/resampling kernels stay small.
func (p *Pipeline) KernelRand() {
	p.dev.Launch("rand", p.grid(), func(g *device.Group) {
		p.randGroup(g, g.ID())
	})
}

// randGroup is KernelRand's work-group body for sub-filter s. The group
// bodies are factored out of the launches so the cross-session batch
// scheduler (RoundBatch) can coalesce the groups of many pipelines into a
// single shared launch.
func (p *Pipeline) randGroup(g *device.Group, s int) {
	buf := p.bufs[s]
	g.StepOne(func() {
		words := buf.Refill()
		// MT-family generation plus the Box-Muller transform the
		// paper folds into the PRNG kernel: ~10 ops per word
		// (recurrence, tempering, and the transform's log/sincos
		// amortized), with the block written to global memory.
		g.Ops(10 * words)
		g.GlobalWrite(4 * words)
	})
}

// KernelSampleWeight is kernel 2 (§VI-B): propagate every particle
// through the state-transition model using the buffered random words and
// assign its importance weight from the measurement. Sampling and
// weighting are fused in one kernel, as in the paper ("we can combine
// sampling and importance weight calculation in one kernel").
func (p *Pipeline) KernelSampleWeight(u, z []float64, k int) {
	p.dev.Launch("sampling", p.grid(), func(g *device.Group) {
		p.sampleGroup(g, g.ID(), u, z, k)
	})
	p.x, p.x2 = p.x2, p.x
}

// sampleGroup is KernelSampleWeight's work-group body for sub-filter s.
// The caller swaps the double buffer after the launch completes.
func (p *Pipeline) sampleGroup(g *device.Group, s int, u, z []float64, k int) {
	m := p.cfg.ParticlesPer
	dim := p.dim
	r := p.rands[s]
	base := s * m * dim
	g.Step(func(lane int) {
		src := p.x[base+lane*dim : base+(lane+1)*dim]
		dst := p.x2[base+lane*dim : base+(lane+1)*dim]
		p.mdl.Step(dst, src, u, k, r)
		p.logw[s*m+lane] += p.mdl.LogLikelihood(dst, z)
		g.GlobalRead(8 * dim)
		g.GlobalWrite(8*dim + 8)
		// Propagation draws ~one normal per state dimension (log,
		// sqrt, sincos via Box-Muller) and the likelihood evaluates
		// the transcendental-heavy measurement equations (the arm's
		// rotation chain): ~160 flops per state dimension, which
		// makes sampling compute-bound on GPUs — the Fig. 4c effect
		// where the model increasingly dominates as state dimension
		// grows.
		g.Ops(160 * dim)
	})
}

// KernelSortLocal is kernel 3 (§VI-C): each sub-filter bitonic-sorts its
// particles by weight, descending. Weights and the permutation index live
// in local memory; the particle payload in global memory is then
// reordered by the index array using non-contiguous reads and contiguous
// writes, the access pattern the paper prefers.
func (p *Pipeline) KernelSortLocal() {
	p.dev.Launch("local sort", p.grid(), func(g *device.Group) {
		p.sortGroup(g, g.ID())
	})
	p.x, p.x2 = p.x2, p.x
}

// sortGroup is KernelSortLocal's work-group body for sub-filter s. The
// caller swaps the double buffer after the launch completes.
func (p *Pipeline) sortGroup(g *device.Group, s int) {
	m := p.cfg.ParticlesPer
	dim := p.dim
	base := s * m * dim
	keys := g.AllocLocalF64(m)
	idx := g.AllocLocalInt(m)
	g.Step(func(lane int) {
		keys[lane] = p.logw[s*m+lane]
		idx[lane] = lane
		g.GlobalRead(8)
		g.LocalWrite(12)
	})
	sortnet.SortDescending(g, keys, idx)
	// Apply the permutation: payload gather (non-contiguous reads,
	// contiguous writes), then write back sorted weights.
	g.Step(func(lane int) {
		src := idx[lane]
		copy(p.x2[base+lane*dim:base+(lane+1)*dim], p.x[base+src*dim:base+(src+1)*dim])
		g.LocalRead(4)
		g.GlobalRead(8 * dim)
		g.GlobalWrite(8 * dim)
	})
	g.Step(func(lane int) {
		p.logw[s*m+lane] = keys[lane]
		g.LocalRead(8)
		g.GlobalWrite(8)
	})
}

// KernelEstimate is kernel 4 (§VI-D): since every sub-filter just sorted,
// its best particle sits at slot 0; only the final reduction rounds over
// the N local bests remain. They run as one small launch, and the winning
// particle's state is copied out host-side (the only device-to-host
// traffic besides the measurement upload, per §VI). With
// Config.MeanEstimate the kernel instead reduces to the globally
// weight-averaged state.
func (p *Pipeline) KernelEstimate() ([]float64, float64) {
	if p.cfg.MeanEstimate {
		return p.kernelEstimateMean()
	}
	return p.kernelEstimateMax()
}

// kernelEstimateMax reduces to the max-weight particle.
func (p *Pipeline) kernelEstimateMax() ([]float64, float64) {
	m := p.cfg.ParticlesPer
	N := p.cfg.SubFilters
	lanes := N
	if lanes > 256 {
		lanes = 256
	}
	heads := make([]float64, N)
	best := 0
	p.dev.Launch("global estimate", device.Grid{Groups: 1, GroupSize: lanes}, func(g *device.Group) {
		g.Step(func(lane int) {
			for i := lane; i < N; i += lanes {
				heads[i] = p.logw[i*m]
				g.GlobalRead(8)
				g.LocalWrite(8)
			}
		})
		best = scan.MaxIndex(g, heads)
	})
	p.bestSub, p.bestLW = best, heads[best]
	out := make([]float64, p.dim)
	base := best * m * p.dim
	copy(out, p.x[base:base+p.dim])
	return out, p.bestLW
}

// kernelEstimateMean reduces to the globally weighted-average state: a
// first launch finds the global max log-weight (for stable
// exponentiation, using the sorted block heads), a second accumulates
// each sub-filter's weighted partial sums, and the host combines the N
// partials.
func (p *Pipeline) kernelEstimateMean() ([]float64, float64) {
	m := p.cfg.ParticlesPer
	N := p.cfg.SubFilters
	dim := p.dim

	// Launch A: global max over the sorted block heads.
	lanes := N
	if lanes > 256 {
		lanes = 256
	}
	heads := make([]float64, N)
	best := 0
	p.dev.Launch("global estimate", device.Grid{Groups: 1, GroupSize: lanes}, func(g *device.Group) {
		g.Step(func(lane int) {
			for i := lane; i < N; i += lanes {
				heads[i] = p.logw[i*m]
				g.GlobalRead(8)
				g.LocalWrite(8)
			}
		})
		best = scan.MaxIndex(g, heads)
	})
	maxLW := heads[best]
	p.bestSub, p.bestLW = best, maxLW
	if math.IsInf(maxLW, -1) || math.IsNaN(maxLW) {
		out := make([]float64, dim)
		base := best * m * dim
		copy(out, p.x[base:base+dim])
		return out, maxLW
	}

	// Launch B: per-sub-filter partial weighted sums.
	partial := make([]float64, N*(dim+1)) // Σw·x per dim, then Σw
	p.dev.Launch("global estimate", p.grid(), func(g *device.Group) {
		s := g.ID()
		base := s * m * dim
		wsum := g.AllocLocalF64(m)
		g.Step(func(lane int) {
			wsum[lane] = math.Exp(p.logw[s*m+lane] - maxLW)
			g.Ops(1)
			g.GlobalRead(8)
			g.LocalWrite(8)
		})
		// Lane 0 accumulates the block (a real kernel would tree-reduce;
		// the ops are counted either way).
		g.StepOne(func() {
			out := partial[s*(dim+1) : (s+1)*(dim+1)]
			for i := 0; i < m; i++ {
				w := wsum[i]
				for d := 0; d < dim; d++ {
					out[d] += w * p.x[base+i*dim+d]
				}
				out[dim] += w
				g.Ops(2 * dim)
				g.GlobalRead(8 * dim)
			}
			g.GlobalWrite(8 * (dim + 1))
		})
	})

	// Host-side final combine over N partials (the last reduction round).
	out := make([]float64, dim)
	total := 0.0
	for s := 0; s < N; s++ {
		part := partial[s*(dim+1) : (s+1)*(dim+1)]
		for d := 0; d < dim; d++ {
			out[d] += part[d]
		}
		total += part[dim]
	}
	if total > 0 {
		for d := range out {
			out[d] /= total
		}
	}
	return out, maxLW
}

// KernelExchange is kernel 5 (§VI-E). Two launches realize the paper's
// scheme: first every sub-filter publishes its best t particles (plus
// their weights) to its outbox in global memory; after the launch
// boundary (the device-wide synchronization point) every sub-filter pulls
// its neighbors' outboxes into its own worst slots. All-to-All inserts a
// selection launch that picks the globally best t of the pooled
// contributions, which every sub-filter then reads back — the "same t
// best particles" semantics that Fig. 6 shows destroys diversity.
func (p *Pipeline) KernelExchange() {
	t := p.cfg.ExchangeCount
	if t == 0 || p.cfg.SubFilters == 1 || p.cfg.Topology.Scheme() == exchange.None {
		return
	}
	m := p.cfg.ParticlesPer
	dim := p.dim
	stride := dim + 1

	// Launch A: publish top-t.
	p.dev.Launch("exchange", p.grid(), func(g *device.Group) {
		s := g.ID()
		base := s * m * dim
		g.Step(func(lane int) {
			if lane >= t {
				return
			}
			rec := p.outbox[(s*t+lane)*stride : (s*t+lane+1)*stride]
			copy(rec[:dim], p.x[base+lane*dim:base+(lane+1)*dim])
			rec[dim] = p.logw[s*m+lane]
			g.GlobalRead(8 * stride)
			g.GlobalWrite(8 * stride)
		})
	})

	if p.cfg.Topology.Scheme() == exchange.AllToAll {
		p.exchangeAllToAll()
		return
	}

	// Launch B: pull from neighbors into the worst slots.
	p.dev.Launch("exchange", p.grid(), func(g *device.Group) {
		s := g.ID()
		base := s * m * dim
		var nbuf []int
		g.StepOne(func() { nbuf = p.cfg.Topology.Neighbors(nil, s) })
		incoming := len(nbuf) * t
		g.Step(func(lane int) {
			if lane >= incoming {
				return
			}
			q := nbuf[lane/t]
			i := lane % t
			slot := m - incoming + lane
			rec := p.outbox[(q*t+i)*stride : (q*t+i+1)*stride]
			copy(p.x[base+slot*dim:base+(slot+1)*dim], rec[:dim])
			p.logw[s*m+slot] = rec[dim]
			g.GlobalRead(8 * stride)
			g.GlobalWrite(8 * stride)
		})
	})
}

// exchangeAllToAll selects the globally best t pooled particles in one
// device sort and broadcasts them into every sub-filter's worst slots.
func (p *Pipeline) exchangeAllToAll() {
	t := p.cfg.ExchangeCount
	N := p.cfg.SubFilters
	m := p.cfg.ParticlesPer
	dim := p.dim
	stride := dim + 1

	pool := N * t
	lanes := pool
	if lanes > 512 {
		lanes = 512
	}
	keys := make([]float64, pool)
	idx := make([]int, pool)
	p.dev.Launch("exchange", device.Grid{Groups: 1, GroupSize: lanes}, func(g *device.Group) {
		g.Step(func(lane int) {
			for i := lane; i < pool; i += lanes {
				keys[i] = p.outbox[i*stride+dim]
				idx[i] = i
				g.GlobalRead(8)
				g.LocalWrite(12)
			}
		})
		sortnet.SortDescending(g, keys, idx)
	})
	copy(p.poolSel, idx[:t])

	p.dev.Launch("exchange", p.grid(), func(g *device.Group) {
		s := g.ID()
		base := s * m * dim
		g.Step(func(lane int) {
			if lane >= t {
				return
			}
			src := p.poolSel[lane]
			slot := m - t + lane
			rec := p.outbox[src*stride : (src+1)*stride]
			copy(p.x[base+slot*dim:base+(slot+1)*dim], rec[:dim])
			p.logw[s*m+slot] = rec[dim]
			g.GlobalRead(8 * stride)
			g.GlobalWrite(8 * stride)
		})
	})
}

// KernelResample is kernel 6 (§VI-F): per-sub-filter local resampling.
// RWS initializes with a parallel (Blelloch) prefix sum over the local
// weights and draws with one binary search per lane; Vose builds the
// alias table with the in-place small/large packing described in the
// paper and draws with two uniforms per lane. Surviving states are
// gathered with non-contiguous reads and contiguous writes, and weights
// reset.
func (p *Pipeline) KernelResample() {
	p.dev.Launch("resampling", p.grid(), func(g *device.Group) {
		p.resampleGroup(g, g.ID())
	})
	p.x, p.x2 = p.x2, p.x
}

// resampleGroup is KernelResample's work-group body for sub-filter s.
// The caller swaps the double buffer after the launch completes.
func (p *Pipeline) resampleGroup(g *device.Group, s int) {
	m := p.cfg.ParticlesPer
	dim := p.dim
	base := s * m * dim
	r := p.rands[s]

	// Local linear weights, stabilized by the local max (slot 0
	// holds the max log-weight after sorting; after an exchange a
	// received particle may beat it, so reduce properly).
	w := g.AllocLocalF64(m)
	g.Step(func(lane int) {
		w[lane] = p.logw[s*m+lane]
		g.GlobalRead(8)
		g.LocalWrite(8)
	})
	maxIdx := scan.MaxIndex(g, w)
	maxLW := w[maxIdx]
	g.Step(func(lane int) {
		if math.IsInf(maxLW, -1) || math.IsNaN(maxLW) {
			w[lane] = 1
		} else {
			w[lane] = math.Exp(w[lane] - maxLW)
		}
		g.Ops(2)
		g.LocalWrite(8)
	})

	resampled := false
	g.StepOne(func() { resampled = p.cfg.Policy.ShouldResample(w, r) })
	if !resampled {
		// Keep the population; copy through so the double buffer
		// stays coherent.
		g.Step(func(lane int) {
			copy(p.x2[base+lane*dim:base+(lane+1)*dim], p.x[base+lane*dim:base+(lane+1)*dim])
			g.GlobalRead(8 * dim)
			g.GlobalWrite(8 * dim)
		})
		return
	}

	sel := g.AllocLocalInt(m)
	switch p.cfg.Resampler {
	case AlgoVose:
		p.voseSelect(g, w, sel, s)
	case AlgoSystematic:
		p.systematicSelect(g, w, sel, s)
	default:
		p.rwsSelect(g, w, sel, s)
	}

	// Gather survivors and reset weights.
	g.Step(func(lane int) {
		src := sel[lane]
		copy(p.x2[base+lane*dim:base+(lane+1)*dim], p.x[base+src*dim:base+(src+1)*dim])
		p.logw[s*m+lane] = 0
		g.LocalRead(4)
		g.GlobalRead(8 * dim)
		g.GlobalWrite(8*dim + 8)
	})
}

// rwsSelect fills sel with RWS draws from the local weights w.
func (p *Pipeline) rwsSelect(g *device.Group, w []float64, sel []int, s int) {
	m := len(w)
	r := p.rands[s]
	cdf := g.AllocLocalF64(m)
	g.Step(func(lane int) {
		cdf[lane] = w[lane]
		g.LocalRead(8)
		g.LocalWrite(8)
	})
	total := scan.Exclusive(g, cdf) // exclusive prefix sums + total
	if !(total > 0) {
		g.Step(func(lane int) { sel[lane] = lane })
		return
	}
	// One uniform + binary search per lane. Lane draws must happen in a
	// deterministic order, so draw them in a dedicated phase first.
	us := g.AllocLocalF64(m)
	g.StepOne(func() {
		for i := range us {
			us[i] = r.Float64() * total
		}
		g.Ops(m)
	})
	g.Step(func(lane int) {
		u := us[lane]
		// Largest index with cdf[idx] <= u (cdf is exclusive sums).
		lo, hi := 0, m-1
		for lo < hi {
			mid := (lo + hi + 1) / 2
			if cdf[mid] <= u {
				lo = mid
			} else {
				hi = mid - 1
			}
			g.Ops(1)
			g.LocalRead(8)
		}
		sel[lane] = lo
		g.LocalWrite(4)
	})
}

// systematicSelect fills sel with systematic draws: pointer i sweeps the
// CDF at (u₀ + i)·total/m for one shared uniform u₀. Initialization is
// the same parallel prefix sum as RWS; generation is one binary search
// per lane with no per-lane random draw.
func (p *Pipeline) systematicSelect(g *device.Group, w []float64, sel []int, s int) {
	m := len(w)
	r := p.rands[s]
	cdf := g.AllocLocalF64(m)
	g.Step(func(lane int) {
		cdf[lane] = w[lane]
		g.LocalRead(8)
		g.LocalWrite(8)
	})
	total := scan.Exclusive(g, cdf)
	if !(total > 0) {
		g.Step(func(lane int) { sel[lane] = lane })
		return
	}
	u0 := 0.0
	g.StepOne(func() {
		u0 = r.Float64()
		g.Ops(1)
	})
	step := total / float64(m)
	g.Step(func(lane int) {
		u := (u0 + float64(lane)) * step
		lo, hi := 0, m-1
		for lo < hi {
			mid := (lo + hi + 1) / 2
			if cdf[mid] <= u {
				lo = mid
			} else {
				hi = mid - 1
			}
			g.Ops(1)
			g.LocalRead(8)
		}
		sel[lane] = lo
		g.LocalWrite(4)
	})
}

// voseSelect fills sel with alias-method draws, building the table with
// the paper's in-place forward/backward packing (§VI-F): one array is
// filled forwards with "small" (weight < 1/m) entries and backwards with
// "large" entries, then weight is moved from large to small entries until
// every slot holds exactly 1/m, registering aliases along the way. The
// construction is the poorly-parallelizing part (concurrency "drops
// steeply towards one"), which is why Fig. 5 shows Vose losing at
// sub-filter sizes; we execute it on lane 0 and account its serial cost.
func (p *Pipeline) voseSelect(g *device.Group, w []float64, sel []int, s int) {
	m := len(w)
	r := p.rands[s]
	prob := g.AllocLocalF64(m)
	alias := g.AllocLocalInt(m)
	packed := g.AllocLocalInt(m)

	total := 0.0
	g.StepOne(func() {
		for _, v := range w {
			total += v
		}
		g.Ops(m)
	})
	if !(total > 0) {
		g.Step(func(lane int) { sel[lane] = lane })
		return
	}
	// Scale to mean 1 and pack small forwards / large backwards — the
	// in-place split array. The packing and the alias assignment below
	// are the poorly-parallelizing sections, executed (and accounted) as
	// serial work.
	scale := float64(m) / total
	nSmall, nLarge := 0, 0
	g.StepSerial(func() {
		for i, v := range w {
			prob[i] = v * scale
			if prob[i] < 1 {
				packed[nSmall] = i
				nSmall++
			} else {
				nLarge++
				packed[m-nLarge] = i
			}
			g.Ops(6)
			g.LocalWrite(12)
		}
	})
	// Serial alias assignment.
	g.StepSerial(func() {
		si, li := 0, m-nLarge
		for si < nSmall && li < m {
			l := packed[si]
			gi := packed[li]
			alias[l] = gi
			prob[gi] = (prob[gi] + prob[l]) - 1
			si++
			if prob[gi] < 1 {
				// The large entry became small: it needs an alias too;
				// append it to the small worklist region.
				packed[nSmall] = gi
				nSmall++
				li++
			}
			// Worklist management, weight transfer and alias
			// registration: ~14 serial ops per processed entry.
			g.Ops(14)
			g.LocalRead(16)
			g.LocalWrite(16)
		}
		// Numerical leftovers on either worklist saturate at probability 1
		// (the alias table is guaranteed to exist; only float error can
		// leave entries behind).
		for ; li < m; li++ {
			gi := packed[li]
			prob[gi] = 1
			alias[gi] = gi
		}
		for ; si < nSmall; si++ {
			l := packed[si]
			prob[l] = 1
			alias[l] = l
		}
	})
	// Draws: two uniforms per lane, pre-drawn in deterministic order.
	us := g.AllocLocalF64(2 * m)
	g.StepOne(func() {
		for i := range us {
			us[i] = r.Float64()
		}
		g.Ops(2 * m)
	})
	g.Step(func(lane int) {
		i := int(us[2*lane] * float64(m))
		if i >= m {
			i = m - 1
		}
		if us[2*lane+1] < prob[i] {
			sel[lane] = i
		} else {
			sel[lane] = alias[i]
		}
		g.Ops(3)
		g.LocalRead(24)
		g.LocalWrite(4)
	})
}
