package kernels

import (
	"math"

	"esthera/internal/device"
	"esthera/internal/exchange"
	"esthera/internal/resample"
	"esthera/internal/sortnet"
)

// KernelRand is kernel 1 (§VI-A): each sub-filter's block buffer is
// refilled from its private stream — the work the paper isolates in a
// dedicated MTGP kernel so the sampling/resampling kernels stay small.
func (p *Pipeline) KernelRand() {
	p.dev.Launch("rand", p.grid(), p.randBody)
}

// randGroup is KernelRand's work-group body for sub-filter s. The group
// bodies are factored out of the launches so the cross-session batch
// scheduler (RoundBatch) can coalesce the groups of many pipelines into a
// single shared launch.
//
//esthera:hotpath noalloc bce
func (p *Pipeline) randGroup(g *device.Group, s int) {
	buf := p.bufs[s]
	g.StepOne(func() {
		words := buf.Refill()
		// MT-family generation plus the Box-Muller transform the
		// paper folds into the PRNG kernel: ~10 ops per word
		// (recurrence, tempering, and the transform's log/sincos
		// amortized), with the block written to global memory.
		g.Ops(10 * words)
		g.GlobalWrite(4 * words)
	})
}

// fusedPhases names the group-local phases of a fused round in launch
// order; the indices are the Group.Phase arguments used by fusedGroup.
// The names match the separate launches exactly, so the profiler's
// per-kernel breakdown is unchanged by fusion.
var fusedPhases = []string{"rand", "sampling", "local sort"}

// fusedGroup runs the three group-local kernel bodies (rand → sample /
// weight → local sort) back to back for sub-filter s, as one fused kernel
// execution. The phases only touch the sub-filter's own columns of global
// memory and its private random stream, so the launch boundaries the
// unfused path places between them are pure synchronization overhead —
// only the barrier *after* local sort is load-bearing (estimate and
// exchange read across groups). Buffers chain explicitly (cur → nxt →
// cur), so the fused round needs no double-buffer swaps for these phases
// and ends in the same buffer state as the unfused sequence of launches +
// swaps; per-phase RNG consumption order is untouched, keeping results
// bit-identical.
//
//esthera:hotpath noalloc bce
func (p *Pipeline) fusedGroup(g *device.Group, s int, u, z []float64, k int) {
	g.Phase(0)
	p.randGroup(g, s)
	g.Phase(1)
	p.sampleGroup(g, s, u, z, k, p.cur, p.nxt)
	g.Phase(2)
	p.sortGroup(g, s, p.nxt, p.cur)
}

// KernelSampleWeight is kernel 2 (§VI-B): propagate every particle
// through the state-transition model using the buffered random words and
// assign its importance weight from the measurement. Sampling and
// weighting are fused in one kernel, as in the paper ("we can combine
// sampling and importance weight calculation in one kernel").
func (p *Pipeline) KernelSampleWeight(u, z []float64, k int) {
	p.curU, p.curZ, p.curK = u, z, k
	p.dev.Launch("sampling", p.grid(), p.sampleBody)
	p.cur, p.nxt = p.nxt, p.cur
}

// sampleGroup is KernelSampleWeight's work-group body for sub-filter s,
// reading particle columns from xin and writing propagated columns to
// xout. The unfused caller passes the double buffer halves and swaps them
// after the launch completes; the fused round chains buffers explicitly.
//
// The body is vectorized: one StepVec span hands the sub-filter's whole
// row range to the model's StepVec/LogLikelihoodVec, which stream
// unit-stride over the SoA columns. Draw order is preserved — the scalar
// path interleaves Step(lane)/LogLikelihood(lane), but LogLikelihood
// draws nothing, so all Step draws in ascending lane order replay the
// identical stream (the model.VecModel contract).
//
//esthera:hotpath noalloc bce
func (p *Pipeline) sampleGroup(g *device.Group, s int, u, z []float64, k int, xin, xout *soaBuf) {
	off, m := p.winOff[s], p.winLen[s]
	dim := p.dim
	vm := p.vms[s]
	r := p.rands[s]
	src := xin.sub[s]
	dst := xout.sub[s]
	vs, vd := p.vsrc[s], p.vdst[s]
	lws := p.logw[off : off+m : off+m]
	lls := p.ll[off : off+m : off+m]
	g.StepVec(func(lo, hi int) {
		// The launch group size is the largest window; smaller windows
		// clamp their span and idle the tail lanes (same in every body).
		if hi > m {
			hi = m
		}
		if lo >= hi {
			return
		}
		for c := 0; c < dim; c++ {
			vs[c] = src[c][lo:hi:hi]
			vd[c] = dst[c][lo:hi:hi]
		}
		vm.StepVec(vd, vs, u, k, r)
		ll := lls[lo:hi:hi]
		vm.LogLikelihoodVec(ll, vd, z)
		lw := lws[lo:hi:hi]
		for i := range lw {
			lw[i] += ll[i]
		}
	})
	g.GlobalRead(8 * dim * m)
	g.GlobalWrite((8*dim + 8) * m)
	// Propagation draws ~one normal per state dimension (log,
	// sqrt, sincos via Box-Muller) and the likelihood evaluates
	// the transcendental-heavy measurement equations (the arm's
	// rotation chain): ~160 flops per state dimension, which
	// makes sampling compute-bound on GPUs — the Fig. 4c effect
	// where the model increasingly dominates as state dimension
	// grows.
	g.Ops(160 * dim * m)
}

// KernelSortLocal is kernel 3 (§VI-C): each sub-filter bitonic-sorts its
// particles by weight, descending. Weights and the permutation index live
// in local memory; the particle payload in global memory is then
// reordered by the index array using non-contiguous reads and contiguous
// writes, the access pattern the paper prefers.
func (p *Pipeline) KernelSortLocal() {
	p.dev.Launch("local sort", p.grid(), p.sortBody)
	p.cur, p.nxt = p.nxt, p.cur
}

// sortGroup is KernelSortLocal's work-group body for sub-filter s,
// reading the particle columns from xin and writing the weight-sorted
// columns to xout. The unfused caller passes the double buffer halves and
// swaps them after the launch; the fused round chains buffers explicitly.
//
//esthera:hotpath noalloc bce
func (p *Pipeline) sortGroup(g *device.Group, s int, xin, xout *soaBuf) {
	if p.cfg.Resampler == AlgoMetropolis {
		// Metropolis resampling needs no sorted input — that is its
		// point. Only the estimate and exchange kernels' contract
		// remains: slot 0 must hold the block's best particle and slots
		// 0..t-1 its published top-t, which a t-pass selection provides
		// without the full bitonic network's log²m barrier stages.
		p.topSelectGroup(g, s, xin, xout)
		return
	}
	off, m := p.winOff[s], p.winLen[s]
	dim := p.dim
	src := xin.sub[s]
	dst := xout.sub[s]
	lws := p.logw[off : off+m : off+m]
	keys := g.AllocLocalF64(m)
	idx := g.AllocLocalInt(m)
	g.StepVec(func(lo, hi int) {
		if hi > m {
			hi = m
		}
		if lo >= hi {
			return
		}
		k := keys[lo:hi:hi]
		ix := idx[lo:hi:hi]
		lw := lws[lo:hi:hi]
		for i := range k {
			k[i] = lw[i]
			ix[i] = lo + i
		}
	})
	g.GlobalRead(8 * m)
	g.LocalWrite(12 * m)
	p.sorts[s].SortDescending(g, keys, idx)
	// Apply the permutation column by column: payload gather
	// (non-contiguous reads, contiguous unit-stride writes), then write
	// back sorted weights.
	g.StepVec(func(lo, hi int) {
		if hi > m {
			hi = m
		}
		if lo >= hi {
			return
		}
		ix := idx[lo:hi:hi]
		for c := 0; c < dim; c++ {
			sc := src[c]
			dc := dst[c][lo:hi:hi]
			for i := range dc {
				dc[i] = sc[ix[i]]
			}
		}
	})
	g.LocalRead(4 * m)
	g.GlobalRead(8 * dim * m)
	g.GlobalWrite(8 * dim * m)
	g.StepVec(func(lo, hi int) {
		if hi > m {
			hi = m
		}
		if lo >= hi {
			return
		}
		lw := lws[lo:hi:hi]
		k := keys[lo:hi:hi]
		for i := range lw {
			lw[i] = k[i]
		}
	})
	g.LocalRead(8 * m)
	g.GlobalWrite(8 * m)
}

// topSelectGroup is the local-sort phase under Metropolis resampling: a
// pass-through copy of the window plus a t-round selection moving the
// top-max(1,t) particles (by log-weight) into the leading slots, where
// the estimate and exchange kernels expect them. Each pass is one
// barrier-phased MaxIndex reduction over the remaining suffix and a
// lane-0 row swap — O(t·log m) work against the bitonic network's
// O(m·log²m), and crucially t ≪ m passes instead of the full sort's
// data-movement barrage. Slots beyond t keep sampling order, so the
// exchange's "worst slots" overwrite arbitrary (not worst) particles —
// the diversity tradeoff the EXPERIMENTS.md ablation quantifies.
//
//esthera:hotpath noalloc bce
func (p *Pipeline) topSelectGroup(g *device.Group, s int, xin, xout *soaBuf) {
	off, m := p.winOff[s], p.winLen[s]
	dim := p.dim
	src := xin.sub[s]
	dst := xout.sub[s]
	lws := p.logw[off : off+m : off+m]
	// Pass-through copy into the out buffer (the fused round chains
	// buffers, so the phase must land its output in xout like the sort).
	g.StepVec(func(lo, hi int) {
		if hi > m {
			hi = m
		}
		if lo >= hi {
			return
		}
		for c := 0; c < dim; c++ {
			copy(dst[c][lo:hi], src[c][lo:hi])
		}
	})
	g.GlobalRead(8 * dim * m)
	g.GlobalWrite(8 * dim * m)
	t := p.cfg.ExchangeCount
	if t < 1 {
		t = 1
	}
	if t > m {
		t = m
	}
	keys := g.AllocLocalF64(m)
	g.StepVec(func(lo, hi int) {
		if hi > m {
			hi = m
		}
		if lo >= hi {
			return
		}
		k := keys[lo:hi:hi]
		lw := lws[lo:hi:hi]
		for i := range k {
			k[i] = lw[i]
		}
	})
	g.GlobalRead(8 * m)
	g.LocalWrite(8 * m)
	for pass := 0; pass < t; pass++ {
		best := pass + p.scans[s].MaxIndex(g, keys[pass:m])
		g.StepOne(func() {
			if best != pass {
				keys[pass], keys[best] = keys[best], keys[pass]
				lws[pass], lws[best] = lws[best], lws[pass]
				for c := 0; c < dim; c++ {
					dc := dst[c]
					dc[pass], dc[best] = dc[best], dc[pass]
				}
			}
			g.LocalRead(16)
			g.GlobalRead(16 * (dim + 1))
			g.GlobalWrite(16 * (dim + 1))
		})
	}
}

// KernelEstimate is kernel 4 (§VI-D): since every sub-filter just sorted,
// its best particle sits at slot 0; only the final reduction rounds over
// the N local bests remain. They run as one small launch, and the winning
// particle's state is copied out host-side (the only device-to-host
// traffic besides the measurement upload, per §VI). With
// Config.MeanEstimate the kernel instead reduces to the globally
// weight-averaged state. The returned slice is the pipeline's reused
// estimate buffer, overwritten by the next round.
func (p *Pipeline) KernelEstimate() ([]float64, float64) {
	p.observeRound()
	if p.cfg.MeanEstimate {
		return p.kernelEstimateMean()
	}
	return p.kernelEstimateMax()
}

// estGrid is the single-group reduction launch shape over the N block
// heads.
func (p *Pipeline) estGrid() device.Grid {
	lanes := p.cfg.SubFilters
	if lanes > 256 {
		lanes = 256
	}
	return device.Grid{Groups: 1, GroupSize: lanes}
}

// estHeadGroup loads the N sorted block-head log-weights and reduces to
// the index of the global best, leaving it in p.estBest.
//
//esthera:hotpath noalloc bce
func (p *Pipeline) estHeadGroup(g *device.Group) {
	N := p.cfg.SubFilters
	heads := p.heads
	g.StepSpan(func(lo, hi int) {
		for i := 0; i < N; i++ {
			heads[i] = p.logw[p.winOff[i]]
		}
	})
	g.GlobalRead(8 * N)
	g.LocalWrite(8 * N)
	p.estBest = p.estScan.MaxIndex(g, heads)
}

// kernelEstimateMax reduces to the max-weight particle.
func (p *Pipeline) kernelEstimateMax() ([]float64, float64) {
	p.dev.Launch("global estimate", p.estGrid(), p.estHeadBody)
	best := p.estBest
	p.bestSub, p.bestLW = best, p.heads[best]
	out := p.estState
	for d, col := range p.cur.sub[best] {
		out[d] = col[0]
	}
	return out, p.bestLW
}

// kernelEstimateMean reduces to the globally weighted-average state: a
// first launch finds the global max log-weight (for stable
// exponentiation, using the sorted block heads), a second accumulates
// each sub-filter's weighted partial sums, and the host combines the N
// partials.
func (p *Pipeline) kernelEstimateMean() ([]float64, float64) {
	N := p.cfg.SubFilters
	dim := p.dim

	// Launch A: global max over the sorted block heads.
	p.dev.Launch("global estimate", p.estGrid(), p.estHeadBody)
	best := p.estBest
	maxLW := p.heads[best]
	p.bestSub, p.bestLW = best, maxLW
	out := p.estState
	if math.IsInf(maxLW, -1) || math.IsNaN(maxLW) {
		for d, col := range p.cur.sub[best] {
			out[d] = col[0]
		}
		return out, maxLW
	}

	// Launch B: per-sub-filter partial weighted sums (Σw·x per dim, then
	// Σw), accumulated into the pipeline's reusable scratch.
	p.estMaxLW = maxLW
	partial := p.partial
	for i := range partial {
		partial[i] = 0
	}
	p.dev.Launch("global estimate", p.grid(), p.estMeanBody)

	// Host-side final combine over N partials (the last reduction round).
	for d := range out {
		out[d] = 0
	}
	total := 0.0
	for s := 0; s < N; s++ {
		part := partial[s*(dim+1) : (s+1)*(dim+1)]
		for d := 0; d < dim; d++ {
			out[d] += part[d]
		}
		total += part[dim]
	}
	if total > 0 {
		for d := range out {
			out[d] /= total
		}
	}
	return out, maxLW
}

// estMeanGroup is the per-sub-filter body of the weighted-average
// estimate's second launch: exponentiate the block's log-weights against
// the global max, then accumulate Σw·x per dimension and Σw. The
// accumulation runs column-major over the SoA storage; each partial sum
// still receives its additions in ascending particle order, so the float
// results are bit-identical to the row-major traversal.
//
//esthera:hotpath noalloc bce
func (p *Pipeline) estMeanGroup(g *device.Group, s int) {
	off, m := p.winOff[s], p.winLen[s]
	dim := p.dim
	maxLW := p.estMaxLW
	cols := p.cur.sub[s]
	lws := p.logw[off : off+m : off+m]
	wsum := g.AllocLocalF64(m)
	g.StepVec(func(lo, hi int) {
		if hi > m {
			hi = m
		}
		if lo >= hi {
			return
		}
		w := wsum[lo:hi:hi]
		lw := lws[lo:hi:hi]
		for i := range w {
			w[i] = math.Exp(lw[i] - maxLW)
		}
	})
	g.Ops(m)
	g.GlobalRead(8 * m)
	g.LocalWrite(8 * m)
	// Lane 0 accumulates the block (a real kernel would tree-reduce;
	// the ops are counted either way).
	g.StepOne(func() {
		out := p.partial[s*(dim+1) : (s+1)*(dim+1)]
		for d := 0; d < dim; d++ {
			col := cols[d]
			acc := out[d]
			for i := 0; i < m; i++ {
				acc += wsum[i] * col[i]
			}
			out[d] = acc
		}
		wacc := out[dim]
		for i := 0; i < m; i++ {
			wacc += wsum[i]
		}
		out[dim] = wacc
		g.Ops(2 * dim * m)
		g.GlobalRead(8 * dim * m)
		g.GlobalWrite(8 * (dim + 1))
	})
}

// KernelExchange is kernel 5 (§VI-E). Two launches realize the paper's
// scheme: first every sub-filter publishes its best t particles (plus
// their weights) to its outbox in global memory; after the launch
// boundary (the device-wide synchronization point) every sub-filter pulls
// its neighbors' outboxes into its own worst slots. All-to-All inserts a
// selection launch that picks the globally best t of the pooled
// contributions, which every sub-filter then reads back — the "same t
// best particles" semantics that Fig. 6 shows destroys diversity.
//
// Outbox records stay AoS (dim+1 contiguous floats per particle): they
// are the wire format the shard/cluster layers ship between processes,
// so the SoA storage is packed/unpacked at this boundary.
func (p *Pipeline) KernelExchange() {
	t := p.cfg.ExchangeCount
	if t == 0 || p.cfg.SubFilters == 1 || p.cfg.Topology.Scheme() == exchange.None {
		return
	}

	// Launch A: publish top-t.
	p.dev.Launch("exchange", p.grid(), p.exchPubBody)

	if p.cfg.Topology.Scheme() == exchange.AllToAll {
		p.dev.Launch("exchange", p.poolGrid(), p.exchPoolBody)
		copy(p.poolSel, p.poolIdx[:t])
		p.dev.Launch("exchange", p.grid(), p.exchBcastBody)
		return
	}

	// Launch B: pull from neighbors into the worst slots.
	p.dev.Launch("exchange", p.grid(), p.exchPullBody)
}

// exchPublishGroup stages sub-filter s's top-t particles (which sit in
// slots 0..t-1 after the local sort) into its outbox records.
//
//esthera:hotpath noalloc bce
func (p *Pipeline) exchPublishGroup(g *device.Group, s int) {
	t := p.cfg.ExchangeCount
	off := p.winOff[s]
	dim := p.dim
	stride := dim + 1
	cols := p.cur.sub[s]
	g.StepSpan(func(lo, hi int) {
		for lane := lo; lane < hi && lane < t; lane++ {
			rec := p.outbox[(s*t+lane)*stride : (s*t+lane+1)*stride]
			for d := 0; d < dim; d++ {
				rec[d] = cols[d][lane]
			}
			rec[dim] = p.logw[off+lane]
		}
	})
	g.GlobalRead(8 * stride * t)
	g.GlobalWrite(8 * stride * t)
}

// exchPullGroup pulls the neighbors' outbox records into sub-filter s's
// worst slots.
//
//esthera:hotpath noalloc bce
func (p *Pipeline) exchPullGroup(g *device.Group, s int) {
	t := p.cfg.ExchangeCount
	off, m := p.winOff[s], p.winLen[s]
	dim := p.dim
	stride := dim + 1
	cols := p.cur.sub[s]
	var nbuf []int
	g.StepOne(func() { nbuf = p.nbrs[s] })
	incoming := len(nbuf) * t
	g.StepSpan(func(lo, hi int) {
		for lane := lo; lane < hi && lane < incoming; lane++ {
			q := nbuf[lane/t]
			i := lane % t
			slot := m - incoming + lane
			rec := p.outbox[(q*t+i)*stride : (q*t+i+1)*stride]
			for d := 0; d < dim; d++ {
				cols[d][slot] = rec[d]
			}
			p.logw[off+slot] = rec[dim]
		}
	})
	g.GlobalRead(8 * stride * incoming)
	g.GlobalWrite(8 * stride * incoming)
}

// poolGrid is the all-to-all selection launch shape over the N·t pooled
// records.
func (p *Pipeline) poolGrid() device.Grid {
	lanes := p.cfg.SubFilters * p.cfg.ExchangeCount
	if lanes > 512 {
		lanes = 512
	}
	return device.Grid{Groups: 1, GroupSize: lanes}
}

// exchPoolGroup sorts the pooled outbox records by weight, leaving the
// descending permutation in p.poolIdx.
//
//esthera:hotpath noalloc bce
func (p *Pipeline) exchPoolGroup(g *device.Group) {
	dim := p.dim
	stride := dim + 1
	pool := p.cfg.SubFilters * p.cfg.ExchangeCount
	keys := p.poolKeys
	idx := p.poolIdx
	g.StepSpan(func(lo, hi int) {
		for i := 0; i < pool; i++ {
			keys[i] = p.outbox[i*stride+dim]
			idx[i] = i
		}
	})
	g.GlobalRead(8 * pool)
	g.LocalWrite(12 * pool)
	p.poolSort.SortDescending(g, keys, idx)
}

// exchBroadcastGroup copies the globally selected top-t records into
// sub-filter s's worst slots.
//
//esthera:hotpath noalloc bce
func (p *Pipeline) exchBroadcastGroup(g *device.Group, s int) {
	t := p.cfg.ExchangeCount
	off, m := p.winOff[s], p.winLen[s]
	dim := p.dim
	stride := dim + 1
	cols := p.cur.sub[s]
	g.StepSpan(func(lo, hi int) {
		for lane := lo; lane < hi && lane < t; lane++ {
			src := p.poolSel[lane]
			slot := m - t + lane
			rec := p.outbox[src*stride : (src+1)*stride]
			for d := 0; d < dim; d++ {
				cols[d][slot] = rec[d]
			}
			p.logw[off+slot] = rec[dim]
		}
	})
	g.GlobalRead(8 * stride * t)
	g.GlobalWrite(8 * stride * t)
}

// KernelResample is kernel 6 (§VI-F): per-sub-filter local resampling.
// RWS initializes with a parallel (Blelloch) prefix sum over the local
// weights and draws with one binary search per lane; Vose builds the
// alias table with the in-place small/large packing described in the
// paper and draws with two uniforms per lane. Surviving states are
// gathered with non-contiguous reads and contiguous writes, and weights
// reset.
func (p *Pipeline) KernelResample() {
	p.dev.Launch("resampling", p.grid(), p.resampleBody)
	p.cur, p.nxt = p.nxt, p.cur
}

// resampleGroup is KernelResample's work-group body for sub-filter s.
// The caller swaps the double buffer after the launch completes.
//
//esthera:hotpath noalloc bce
func (p *Pipeline) resampleGroup(g *device.Group, s int) {
	off, m := p.winOff[s], p.winLen[s]
	dim := p.dim
	src := p.cur.sub[s]
	dst := p.nxt.sub[s]
	r := p.rands[s]
	lws := p.logw[off : off+m : off+m]

	// Local linear weights, stabilized by the local max (slot 0
	// holds the max log-weight after sorting; after an exchange a
	// received particle may beat it, so reduce properly).
	w := g.AllocLocalF64(m)
	g.StepVec(func(lo, hi int) {
		if hi > m {
			hi = m
		}
		if lo >= hi {
			return
		}
		wl := w[lo:hi:hi]
		lw := lws[lo:hi:hi]
		for i := range wl {
			wl[i] = lw[i]
		}
	})
	g.GlobalRead(8 * m)
	g.LocalWrite(8 * m)
	maxIdx := p.scans[s].MaxIndex(g, w)
	maxLW := w[maxIdx]
	degenerate := math.IsInf(maxLW, -1) || math.IsNaN(maxLW)
	g.StepVec(func(lo, hi int) {
		if hi > m {
			hi = m
		}
		if lo >= hi {
			return
		}
		wl := w[lo:hi:hi]
		if degenerate {
			for i := range wl {
				wl[i] = 1
			}
		} else {
			for i := range wl {
				wl[i] = math.Exp(wl[i] - maxLW)
			}
		}
	})
	g.Ops(2 * m)
	g.LocalWrite(8 * m)

	resampled := false
	g.StepOne(func() {
		// Record the honest degeneracy signal while it still exists: the
		// ESS fraction of the weights the resampler is about to consume.
		// After this kernel the weights are uniform and the signal is
		// gone. Degenerate windows (NaN/±Inf max) read 0.
		if degenerate {
			p.essAtResample[s] = 0
		} else {
			var sum, sumSq float64
			for _, v := range w[:m] {
				sum += v
				sumSq += v * v
			}
			if sumSq == 0 {
				p.essAtResample[s] = 0
			} else {
				p.essAtResample[s] = sum * sum / sumSq / float64(m)
			}
		}
		resampled = p.cfg.Policy.ShouldResample(w, r)
		// Record the policy decision for health sampling; each group
		// owns its own flag slot, and readers wait for the launch.
		if resampled {
			p.resampleFlags[s] = 1
		} else {
			p.resampleFlags[s] = 0
		}
	})
	g.Ops(3 * m)
	g.LocalRead(8 * m)
	if !resampled {
		// Keep the population; copy through so the double buffer
		// stays coherent.
		g.StepVec(func(lo, hi int) {
			if hi > m {
				hi = m
			}
			if lo >= hi {
				return
			}
			for c := 0; c < dim; c++ {
				copy(dst[c][lo:hi], src[c][lo:hi])
			}
		})
		g.GlobalRead(8 * dim * m)
		g.GlobalWrite(8 * dim * m)
		return
	}

	sel := g.AllocLocalInt(m)
	switch p.cfg.Resampler {
	case AlgoVose:
		p.voseSelect(g, w, sel, s)
	case AlgoSystematic:
		p.systematicSelect(g, w, sel, s)
	case AlgoMetropolis:
		p.metropolisSelect(g, w, sel, s)
	default:
		p.rwsSelect(g, w, sel, s)
	}

	// Gather survivors column by column and reset weights.
	g.StepVec(func(lo, hi int) {
		if hi > m {
			hi = m
		}
		if lo >= hi {
			return
		}
		ix := sel[lo:hi:hi]
		for c := 0; c < dim; c++ {
			sc := src[c]
			dc := dst[c][lo:hi:hi]
			for i := range dc {
				dc[i] = sc[ix[i]]
			}
		}
		lw := lws[lo:hi:hi]
		for i := range lw {
			lw[i] = 0
		}
	})
	g.LocalRead(4 * m)
	g.GlobalRead(8 * dim * m)
	g.GlobalWrite((8*dim + 8) * m)
}

// rwsSelect fills sel with RWS draws from the local weights w.
//
//esthera:hotpath noalloc bce
func (p *Pipeline) rwsSelect(g *device.Group, w []float64, sel []int, s int) {
	m := len(w)
	r := p.rands[s]
	cdf := g.AllocLocalF64(m)
	g.StepVec(func(lo, hi int) {
		if hi > m {
			hi = m
		}
		if lo >= hi {
			return
		}
		c := cdf[lo:hi:hi]
		wl := w[lo:hi:hi]
		for i := range c {
			c[i] = wl[i]
		}
	})
	g.LocalRead(8 * m)
	g.LocalWrite(8 * m)
	total := p.scans[s].Exclusive(g, cdf) // exclusive prefix sums + total
	if !(total > 0) {
		g.StepVec(func(lo, hi int) {
			if hi > m {
				hi = m
			}
			if lo >= hi {
				return
			}
			ix := sel[lo:hi:hi]
			for i := range ix {
				ix[i] = lo + i
			}
		})
		return
	}
	// One uniform + binary search per lane. Lane draws must happen in a
	// deterministic order, so draw them in a dedicated phase first.
	us := g.AllocLocalF64(m)
	g.StepOne(func() {
		r.FillUniforms(us)
		for i := range us {
			us[i] *= total
		}
		g.Ops(m)
	})
	// Search depth is data-dependent, so each lane tallies its own
	// iteration count in a lane-indexed scratch slot; the host sums them
	// after the barrier (identical totals, no cross-lane writes).
	//
	// The searches compare order-preserving integer images of the cdf
	// and the draws (sortnet.KeyImages) instead of the floats: integer
	// comparisons compile to conditional moves, removing the
	// ~50%-mispredicted branch per search level. The selected indices
	// and per-lane iteration counts are identical.
	icdf := g.ScratchInt(m)
	sortnet.KeyImages(icdf, cdf)
	laneIters := g.ScratchInt(m)
	g.StepSpan(func(spanLo, spanHi int) {
		if spanHi > m {
			spanHi = m
		}
		if spanLo >= spanHi {
			return
		}
		lane := spanLo
		if m&(m-1) == 0 {
			// For power-of-two m the halving recurrence visits interval
			// [lo, lo+2·step-1] with mid = lo+step for step = m/2, m/4,
			// …, 1 — a stride descent with exactly log2(m) levels per
			// lane. The levels form a serial load→compare chain, so four
			// lanes run interleaved to overlap their chains.
			for ; lane+4 <= spanHi; lane += 4 {
				iu0 := sortnet.KeyImage(us[lane])
				iu1 := sortnet.KeyImage(us[lane+1])
				iu2 := sortnet.KeyImage(us[lane+2])
				iu3 := sortnet.KeyImage(us[lane+3])
				lo0, lo1, lo2, lo3 := 0, 0, 0, 0
				n := 0
				for step := m >> 1; step > 0; step >>= 1 {
					// The flag-then-multiply form compiles to setcc
					// (branchless); `if { lo += step }` does not.
					s0, s1, s2, s3 := 0, 0, 0, 0
					if icdf[lo0+step] <= iu0 {
						s0 = 1
					}
					if icdf[lo1+step] <= iu1 {
						s1 = 1
					}
					if icdf[lo2+step] <= iu2 {
						s2 = 1
					}
					if icdf[lo3+step] <= iu3 {
						s3 = 1
					}
					lo0 += s0 * step
					lo1 += s1 * step
					lo2 += s2 * step
					lo3 += s3 * step
					n++
				}
				sel[lane], sel[lane+1], sel[lane+2], sel[lane+3] = lo0, lo1, lo2, lo3
				laneIters[lane], laneIters[lane+1], laneIters[lane+2], laneIters[lane+3] = n, n, n, n
			}
		}
		for ; lane < spanHi; lane++ {
			iu := sortnet.KeyImage(us[lane])
			// Largest index with cdf[idx] <= u (cdf is exclusive sums).
			lo, hi := 0, m-1
			n := 0
			for lo < hi {
				mid := int(uint(lo+hi+1) >> 1)
				nlo, nhi := mid, hi
				if icdf[mid] > iu {
					nlo, nhi = lo, mid-1
				}
				lo, hi = nlo, nhi
				n++
			}
			sel[lane] = lo
			laneIters[lane] = n
		}
	})
	iters := 0
	for _, n := range laneIters {
		iters += n
	}
	g.Ops(iters)
	g.LocalRead(8 * iters)
	g.LocalWrite(4 * m)
}

// systematicSelect fills sel with systematic draws: pointer i sweeps the
// CDF at (u₀ + i)·total/m for one shared uniform u₀. Initialization is
// the same parallel prefix sum as RWS; generation is one binary search
// per lane with no per-lane random draw.
//
//esthera:hotpath noalloc bce
func (p *Pipeline) systematicSelect(g *device.Group, w []float64, sel []int, s int) {
	m := len(w)
	r := p.rands[s]
	cdf := g.AllocLocalF64(m)
	g.StepVec(func(lo, hi int) {
		if hi > m {
			hi = m
		}
		if lo >= hi {
			return
		}
		c := cdf[lo:hi:hi]
		wl := w[lo:hi:hi]
		for i := range c {
			c[i] = wl[i]
		}
	})
	g.LocalRead(8 * m)
	g.LocalWrite(8 * m)
	total := p.scans[s].Exclusive(g, cdf)
	if !(total > 0) {
		g.StepVec(func(lo, hi int) {
			if hi > m {
				hi = m
			}
			if lo >= hi {
				return
			}
			ix := sel[lo:hi:hi]
			for i := range ix {
				ix[i] = lo + i
			}
		})
		return
	}
	u0 := 0.0
	g.StepOne(func() {
		u0 = r.Float64()
		g.Ops(1)
	})
	step := total / float64(m)
	// As in rwsSelect: per-lane search depths land in lane-indexed
	// scratch and are summed host-side after the barrier.
	laneIters := g.ScratchInt(m)
	g.StepSpan(func(spanLo, spanHi int) {
		if spanHi > m {
			spanHi = m
		}
		for lane := spanLo; lane < spanHi; lane++ {
			u := (u0 + float64(lane)) * step
			lo, hi := 0, m-1
			n := 0
			for lo < hi {
				mid := (lo + hi + 1) / 2
				if cdf[mid] <= u {
					lo = mid
				} else {
					hi = mid - 1
				}
				n++
			}
			sel[lane] = lo
			laneIters[lane] = n
		}
	})
	iters := 0
	for _, n := range laneIters {
		iters += n
	}
	g.Ops(iters)
	g.LocalRead(8 * iters)
	g.LocalWrite(4 * m)
}

// voseSelect fills sel with alias-method draws, building the table with
// the paper's in-place forward/backward packing (§VI-F): one array is
// filled forwards with "small" (weight < 1/m) entries and backwards with
// "large" entries, then weight is moved from large to small entries until
// every slot holds exactly 1/m, registering aliases along the way. The
// construction is the poorly-parallelizing part (concurrency "drops
// steeply towards one"), which is why Fig. 5 shows Vose losing at
// sub-filter sizes; we execute it on lane 0 and account its serial cost.
//
//esthera:hotpath noalloc bce
func (p *Pipeline) voseSelect(g *device.Group, w []float64, sel []int, s int) {
	m := len(w)
	r := p.rands[s]
	prob := g.AllocLocalF64(m)
	alias := g.AllocLocalInt(m)
	packed := g.AllocLocalInt(m)

	total := 0.0
	g.StepOne(func() {
		for _, v := range w {
			total += v
		}
		g.Ops(m)
	})
	if !(total > 0) {
		g.StepVec(func(lo, hi int) {
			if hi > m {
				hi = m
			}
			if lo >= hi {
				return
			}
			ix := sel[lo:hi:hi]
			for i := range ix {
				ix[i] = lo + i
			}
		})
		return
	}
	// Scale to mean 1 and pack small forwards / large backwards — the
	// in-place split array. The packing and the alias assignment below
	// are the poorly-parallelizing sections, executed (and accounted) as
	// serial work.
	scale := float64(m) / total
	nSmall, nLarge := 0, 0
	g.StepSerial(func() {
		for i, v := range w {
			prob[i] = v * scale
			if prob[i] < 1 {
				packed[nSmall] = i
				nSmall++
			} else {
				nLarge++
				packed[m-nLarge] = i
			}
		}
		g.Ops(6 * m)
		g.LocalWrite(12 * m)
	})
	// Serial alias assignment.
	g.StepSerial(func() {
		si, li := 0, m-nLarge
		processed := 0
		for si < nSmall && li < m {
			l := packed[si]
			gi := packed[li]
			alias[l] = gi
			prob[gi] = (prob[gi] + prob[l]) - 1
			si++
			if prob[gi] < 1 {
				// The large entry became small: it needs an alias too;
				// append it to the small worklist region.
				packed[nSmall] = gi
				nSmall++
				li++
			}
			processed++
		}
		// Worklist management, weight transfer and alias
		// registration: ~14 serial ops per processed entry.
		g.Ops(14 * processed)
		g.LocalRead(16 * processed)
		g.LocalWrite(16 * processed)
		// Numerical leftovers on either worklist saturate at probability 1
		// (the alias table is guaranteed to exist; only float error can
		// leave entries behind).
		for ; li < m; li++ {
			gi := packed[li]
			prob[gi] = 1
			alias[gi] = gi
		}
		for ; si < nSmall; si++ {
			l := packed[si]
			prob[l] = 1
			alias[l] = l
		}
	})
	// Draws: two uniforms per lane, pre-drawn in deterministic order.
	us := g.AllocLocalF64(2 * m)
	g.StepOne(func() {
		r.FillUniforms(us)
		g.Ops(2 * m)
	})
	g.StepSpan(func(lo, hi int) {
		if hi > m {
			hi = m
		}
		for lane := lo; lane < hi; lane++ {
			i := int(us[2*lane] * float64(m))
			if i >= m {
				i = m - 1
			}
			if us[2*lane+1] < prob[i] {
				sel[lane] = i
			} else {
				sel[lane] = alias[i]
			}
		}
	})
	g.Ops(3 * m)
	g.LocalRead(24 * m)
	g.LocalWrite(4 * m)
}

// metropolisSelect fills sel with Metropolis-chain draws (Murray et al.,
// arXiv:1202.6163): each lane runs an independent biased random walk
// over the particle indices, proposing a uniform index each step and
// accepting when u·w[cur] < w[proposal]. No prefix sum, no alias table,
// no sorted input — the only collective structure left is the
// barrier-phased alternation of one deterministic-order draw phase (the
// stream is shared per sub-filter, so the 2m uniforms of each chain step
// are drawn in a dedicated lane-0 phase, exactly like the other selects'
// pre-drawn uniforms) and one data-parallel walk phase. The chain length
// is MetropolisSteps(m) = 2·⌈log₂ m⌉ + 8 (resample.MetropolisSteps — the
// sequential reference uses the same schedule, and DESIGN.md §12 records
// the choice). All writes are lane-indexed (cur[lane], sel[lane]), so
// the barrier analyzer's no-cross-lane-write rule holds.
//
//esthera:hotpath noalloc bce
func (p *Pipeline) metropolisSelect(g *device.Group, w []float64, sel []int, s int) {
	m := len(w)
	r := p.rands[s]
	steps := resample.MetropolisSteps(m)
	cur := sel // chains walk in place: sel doubles as the chain state
	g.StepVec(func(lo, hi int) {
		if hi > m {
			hi = m
		}
		if lo >= hi {
			return
		}
		ix := cur[lo:hi:hi]
		for i := range ix {
			ix[i] = lo + i
		}
	})
	g.LocalWrite(4 * m)
	us := g.AllocLocalF64(2 * m)[: 2*m : 2*m]
	ws := w[:m:m]
	fm := float64(m)
	// One draw closure and one walk closure, bound once and stepped B
	// times — the chain loop itself allocates nothing.
	draw := func() {
		// Draw phase: 2m uniforms in deterministic stream order (one
		// proposal + one acceptance draw per lane).
		r.FillUniforms(us)
		g.Ops(2 * m)
	}
	walk := func(lo, hi int) {
		// Walk phase: every lane advances its own chain one step.
		if hi > m {
			hi = m
		}
		for lane := lo; lane < hi; lane++ {
			k := int(us[2*lane] * fm)
			if k >= m {
				k = m - 1
			}
			c := cur[lane]
			if us[2*lane+1]*ws[c] < ws[k] {
				cur[lane] = k
			}
		}
	}
	for b := 0; b < steps; b++ {
		g.StepOne(draw)
		g.StepSpan(walk)
	}
	g.Ops(4 * m * steps)
	g.LocalRead(24 * m * steps)
	g.LocalWrite(4 * m * steps)
}
