//go:build race

package kernels_test

// raceEnabled reports whether the race detector is active. Allocation
// pins are skipped under race: the detector's instrumentation allocates
// on paths that are allocation-free in a normal build.
const raceEnabled = true
