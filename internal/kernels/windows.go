package kernels

import (
	"fmt"
	"math"

	"esthera/internal/exchange"
)

// Adaptive particle allocation (Demirel et al., arXiv:1310.4624): the
// per-sub-filter windows of the SoA arena can be resized between rounds,
// shrinking sub-filters whose effective sample size is healthy and
// growing degenerating ones. The arena's total size never changes — the
// windows are a partition — so steady-state rounds stay allocation-free
// and the wire formats (checkpoints, exchange records) are untouched:
// AoS conversion happens only here, at the reallocation boundary,
// through the same pack/unpack paths checkpoints use.

// Windows returns a copy of the current per-sub-filter window lengths.
func (p *Pipeline) Windows() []int {
	return append([]int(nil), p.winLen...)
}

// Reallocations returns the number of window resizes applied so far.
func (p *Pipeline) Reallocations() int64 { return p.reallocs }

// windowBounds returns the smallest and largest window lengths.
func (p *Pipeline) windowBounds() (min, max int) {
	min, max = p.winLen[0], p.winLen[0]
	for _, l := range p.winLen[1:] {
		if l < min {
			min = l
		}
		if l > max {
			max = l
		}
	}
	return min, max
}

// uniformWindows reports whether every window has the configured size.
func (p *Pipeline) uniformWindows() bool {
	for _, l := range p.winLen {
		if l != p.cfg.ParticlesPer {
			return false
		}
	}
	return true
}

// MinWindowFloor returns the smallest window length validateWindows
// accepts: every window must hold the exchange traffic the topology
// delivers plus at least one locally-owned particle. The adaptive
// allocator uses it as the hard lower clamp.
func (p *Pipeline) MinWindowFloor() int {
	t := p.cfg.ExchangeCount
	if t == 0 {
		return 1
	}
	incoming := p.cfg.Topology.MaxDegree() * t
	if p.cfg.Topology.Scheme() == exchange.AllToAll {
		incoming = t
	}
	return incoming + 1
}

// validateWindows checks a candidate window partition against the
// pipeline's invariants.
func (p *Pipeline) validateWindows(sizes []int) error {
	N, m := p.cfg.SubFilters, p.cfg.ParticlesPer
	if len(sizes) != N {
		return fmt.Errorf("kernels: %d window sizes for %d sub-filters", len(sizes), N)
	}
	t := p.cfg.ExchangeCount
	incoming := p.cfg.Topology.MaxDegree() * t
	if p.cfg.Topology.Scheme() == exchange.AllToAll {
		incoming = t
	}
	total := 0
	for s, l := range sizes {
		if l < 1 {
			return fmt.Errorf("kernels: window %d size %d < 1", s, l)
		}
		if t > 0 && incoming >= l {
			return fmt.Errorf("kernels: window %d size %d cannot hold %d incoming exchange particles",
				s, l, incoming)
		}
		if t > l {
			return fmt.Errorf("kernels: window %d size %d < exchange count %d", s, l, t)
		}
		total += l
	}
	if total != N*m {
		return fmt.Errorf("kernels: window sizes sum to %d, arena holds %d", total, N*m)
	}
	return nil
}

// applyWindows installs a (validated) window partition: offsets, lengths,
// group size, and the re-cut sub-filter views of both particle buffers.
// It moves no particle data — Reallocate replays rows afterwards, and
// Restore overwrites the arena wholesale from the snapshot.
func (p *Pipeline) applyWindows(sizes []int) {
	off := 0
	maxWin := 0
	for s, l := range sizes {
		p.winOff[s] = off
		p.winLen[s] = l
		off += l
		if l > maxWin {
			maxWin = l
		}
	}
	p.maxWin = maxWin
	p.cur.cut(p.winOff, p.winLen)
	p.nxt.cut(p.winOff, p.winLen)
}

// Reallocate resizes the per-sub-filter windows to sizes (one entry per
// sub-filter, summing to SubFilters × ParticlesPer). Shrinking keeps the
// window's leading particles — after the local sort those are the
// best-weighted ones — and growing cycle-clones the existing particles
// (row j comes from old row j mod oldLen, log-weight included), the
// standard population-expansion bootstrap: the clones separate at the
// next propagation's independent noise draws.
//
// State moves through the AoS boundary format via the same pack path
// checkpoints use, so reallocation is deliberately not a hot path; it
// runs every k rounds from the adaptive allocator, between launches.
// Random streams are not touched — draws stay in per-sub-filter order,
// and a grown window's extra draws fall back to the stream's sequential
// path position-correctly (rng.Buffer's overflow contract).
func (p *Pipeline) Reallocate(sizes []int) error {
	if err := p.validateWindows(sizes); err != nil {
		return err
	}
	same := true
	for s, l := range sizes {
		if l != p.winLen[s] {
			same = false
			break
		}
	}
	if same {
		return nil
	}

	// Pack the current population (AoS, arena row order) and keep the old
	// layout so rows can be replayed into the new windows.
	aos := p.Particles()
	oldLogw := append([]float64(nil), p.logw...)
	oldOff := append([]int(nil), p.winOff...)
	oldLen := append([]int(nil), p.winLen...)

	p.applyWindows(sizes)

	dim := p.dim
	for s := range sizes {
		no, nl := p.winOff[s], p.winLen[s]
		oo, ol := oldOff[s], oldLen[s]
		sub := p.cur.sub[s]
		for j := 0; j < nl; j++ {
			srcRow := oo + j%ol
			rec := aos[srcRow*dim : (srcRow+1)*dim]
			for d := 0; d < dim; d++ {
				sub[d][j] = rec[d]
			}
			p.logw[no+j] = oldLogw[srcRow]
		}
	}
	p.reallocs++
	return nil
}

// ResampleESSFrac appends each sub-filter's ESS fraction as measured
// inside the most recent round at the resample decision point — before
// the resampler reset the weights. This is the adaptive allocator's
// input signal: the post-round log-weights "lie" about degeneracy (an
// always-resample pipeline reads uniformly healthy every round), while
// this captures the weights the resampler actually consumed. Before any
// round it reads all-1 (the fresh prior is healthy by construction).
func (p *Pipeline) ResampleESSFrac(dst []float64) []float64 {
	return append(dst, p.essAtResample...)
}

// SubESSFrac computes each sub-filter's effective-sample-size fraction
// (ESS over window length, in [0, 1]) from the current log-weights,
// appending to dst. Unlike ResampleESSFrac it reads the live buffer —
// useful for poison detection and post-hoc inspection, but blind to
// degeneracy that resampling already erased. Non-finite windows —
// poisoned (NaN/+Inf) or fully underflowed — read as 0, fully
// degenerate, the same clamp resample.ESS and
// telemetry.HealthFromLogWeights apply.
func (p *Pipeline) SubESSFrac(dst []float64) []float64 {
	for s := 0; s < p.cfg.SubFilters; s++ {
		off, m := p.winOff[s], p.winLen[s]
		lws := p.logw[off : off+m]
		maxLW := math.Inf(-1)
		poisoned := false
		for _, lw := range lws {
			if math.IsNaN(lw) || math.IsInf(lw, 1) {
				poisoned = true
				break
			}
			if lw > maxLW {
				maxLW = lw
			}
		}
		if poisoned || math.IsInf(maxLW, -1) {
			dst = append(dst, 0)
			continue
		}
		var sum, sumSq float64
		for _, lw := range lws {
			w := math.Exp(lw - maxLW)
			sum += w
			sumSq += w * w
		}
		if sumSq == 0 {
			dst = append(dst, 0)
			continue
		}
		dst = append(dst, sum*sum/sumSq/float64(m))
	}
	return dst
}
