package kernels

import (
	"fmt"

	"esthera/internal/device"
)

// BatchRound couples one pipeline with the inputs of one filtering round.
// After RoundBatch returns, State and LogW hold the round's global
// estimate (the same values Pipeline.Round would have returned).
type BatchRound struct {
	P *Pipeline
	// U, Z, K are the round inputs: control, measurement, step index.
	U, Z []float64
	K    int

	// State and LogW are the outputs.
	State []float64
	LogW  float64
}

// RoundBatch runs one filtering round for every entry, coalescing the
// per-sub-filter kernels (rand, sampling, local sort, resampling) of all
// pipelines into shared launches on dev. This is the mechanism the serve
// scheduler uses to keep a shared device saturated: B sessions of N
// sub-filters each become launches of B·N work-groups, so the device's
// workers drain one large grid instead of B small ones with B launch
// barriers per kernel. The group-local kernels additionally run fused
// (see Pipeline.RoundFused), so one round of B sessions costs a single
// shared launch for rand+sampling+local sort plus one shared resampling
// launch, instead of 4·B.
//
// The estimate and exchange kernels involve pipeline-global reductions
// (a single-group reduction launch, and topology-dependent neighbor
// pulls), so they remain per-pipeline launches between the shared ones.
//
// Every pipeline must have been created on dev. Pipelines with different
// ParticlesPer (work-group sizes) cannot share a grid; RoundBatch
// partitions the batch by group size and merges within each partition.
// A pipeline must appear at most once per batch (a session's steps are
// ordered; coalescing two rounds of the same filter would reorder its
// kernels).
func RoundBatch(dev *device.Device, batch []*BatchRound) error {
	if len(batch) == 0 {
		return nil
	}
	seen := make(map[*Pipeline]bool, len(batch))
	byM := make(map[int][]*BatchRound)
	var sizes []int
	for _, e := range batch {
		if e == nil || e.P == nil {
			return fmt.Errorf("kernels: nil batch entry")
		}
		if e.P.dev != dev {
			return fmt.Errorf("kernels: batched pipeline lives on a different device")
		}
		if seen[e.P] {
			return fmt.Errorf("kernels: pipeline appears twice in one batch")
		}
		seen[e.P] = true
		m := e.P.cfg.ParticlesPer
		if byM[m] == nil {
			sizes = append(sizes, m)
		}
		byM[m] = append(byM[m], e)
	}
	for _, m := range sizes {
		roundMerged(dev, m, byM[m])
	}
	return nil
}

// roundMerged runs one round for a set of pipelines sharing work-group
// size m. The three group-local kernels (rand, sampling, local sort) of
// all pipelines run as one merged *fused* launch — the batched serving
// path compounds both optimizations: B·N work-groups share a single grid
// (one launch instead of B), and the grid runs one fused body instead of
// three barrier-separated kernels (one launch instead of 3·B).
func roundMerged(dev *device.Device, m int, part []*BatchRound) {
	// Flat map from merged group id to (batch entry, local sub-filter).
	type slot struct{ e, s int }
	var groups []slot
	for i, e := range part {
		for s := 0; s < e.P.cfg.SubFilters; s++ {
			groups = append(groups, slot{e: i, s: s})
		}
	}
	grid := device.Grid{Groups: len(groups), GroupSize: m}

	dev.LaunchFused(fusedPhases, grid, func(g *device.Group) {
		sl := groups[g.ID()]
		e := part[sl.e]
		e.P.fusedGroup(g, sl.s, e.U, e.Z, e.K)
	})
	// No buffer swaps: each pipeline's fused body chains x → x2 → x.

	// Global estimate and particle exchange reduce across a pipeline's
	// whole sub-filter network; they stay per-pipeline.
	for _, e := range part {
		e.State, e.LogW = e.P.KernelEstimate()
		e.P.KernelExchange()
	}

	dev.Launch("resampling", grid, func(g *device.Group) {
		sl := groups[g.ID()]
		part[sl.e].P.resampleGroup(g, sl.s)
	})
	for _, e := range part {
		e.P.x, e.P.x2 = e.P.x2, e.P.x
	}
}
