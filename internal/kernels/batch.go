package kernels

import (
	"fmt"

	"esthera/internal/device"
)

// BatchRound couples one pipeline with the inputs of one filtering round.
// After RoundBatch returns, State and LogW hold the round's global
// estimate (the same values Pipeline.Round would have returned).
type BatchRound struct {
	P *Pipeline
	// U, Z, K are the round inputs: control, measurement, step index.
	U, Z []float64
	K    int

	// State and LogW are the outputs.
	State []float64
	LogW  float64
}

// RoundBatch runs one filtering round for every entry, coalescing the
// per-sub-filter kernels (rand, sampling, local sort, resampling) of all
// pipelines into shared launches on dev. This is the mechanism the serve
// scheduler uses to keep a shared device saturated: B sessions of N
// sub-filters each become launches of B·N work-groups, so the device's
// workers drain one large grid instead of B small ones with B launch
// barriers per kernel. The group-local kernels additionally run fused
// (see Pipeline.RoundFused), so one round of B sessions costs a single
// shared launch for rand+sampling+local sort plus one shared resampling
// launch, instead of 4·B.
//
// The estimate and exchange kernels involve pipeline-global reductions
// (a single-group reduction launch, and topology-dependent neighbor
// pulls), so they remain per-pipeline launches between the shared ones.
//
// Every pipeline must have been created on dev. Pipelines with different
// work-group sizes (the largest per-sub-filter window — ParticlesPer
// under uniform allocation) cannot share a grid; RoundBatch partitions
// the batch by group size and merges within each partition.
// A pipeline must appear at most once per batch (a session's steps are
// ordered; coalescing two rounds of the same filter would reorder its
// kernels).
func RoundBatch(dev *device.Device, batch []*BatchRound) error {
	return NewBatcher(dev).Round(batch)
}

// Batcher executes RoundBatch rounds with reusable scratch: the
// duplicate-detection map, the per-group-size partitions, the merged
// group tables, and the launch closures all persist across rounds, so a
// steady-state round performs no heap allocations. The serve scheduler
// holds one Batcher per device for the lifetime of the server; the
// one-shot RoundBatch wrapper builds a throwaway one.
//
// A Batcher is not safe for concurrent use; like the pipelines it
// steps, it belongs to a single scheduling goroutine.
type Batcher struct {
	dev   *device.Device
	round int               // current round stamp
	seen  map[*Pipeline]int // round at which each pipeline was last batched
	parts map[int]*mergedPart
	live  []*mergedPart // parts used this round, in first-seen order
}

// mergedPart is the reusable per-group-size partition: the entries
// sharing one work-group size, their flattened group table, and the two
// launch bodies (built once, reading the current tables through the
// part pointer).
type mergedPart struct {
	round    int
	entries  []*BatchRound
	groups   []batchSlot
	fused    func(g *device.Group)
	resample func(g *device.Group)
}

// batchSlot maps one merged work-group to (entry index, local sub-filter).
type batchSlot struct{ e, s int }

// NewBatcher returns a Batcher for pipelines living on dev.
func NewBatcher(dev *device.Device) *Batcher {
	return &Batcher{
		dev:   dev,
		seen:  make(map[*Pipeline]int),
		parts: make(map[int]*mergedPart),
	}
}

// Round runs one filtering round for every entry; see RoundBatch for
// the coalescing contract. A failed validation leaves every pipeline
// unstepped.
//
//esthera:hotpath noalloc bce
func (b *Batcher) Round(batch []*BatchRound) error {
	if len(batch) == 0 {
		return nil
	}
	b.round++
	b.live = b.live[:0]
	for _, e := range batch {
		if e == nil || e.P == nil {
			return fmt.Errorf("kernels: nil batch entry")
		}
		if e.P.dev != b.dev {
			return fmt.Errorf("kernels: batched pipeline lives on a different device")
		}
		if b.seen[e.P] == b.round {
			return fmt.Errorf("kernels: pipeline appears twice in one batch")
		}
		b.seen[e.P] = b.round
		m := e.P.groupLanes()
		p := b.parts[m]
		if p == nil {
			// Amortized: a merged part is built once per distinct group
			// size, then reused; the steady state reruns existing parts.
			//esthera:allow noalloc merged-part construction is the amortized grow path, not steady state
			p = newMergedPart()
			b.parts[m] = p
		}
		if p.round != b.round {
			p.round = b.round
			p.entries = p.entries[:0]
			b.live = append(b.live, p)
		}
		p.entries = append(p.entries, e)
	}
	for _, p := range b.live {
		p.run(b.dev)
	}
	return nil
}

// newMergedPart builds a partition with its two launch bodies. The
// closures are allocated here, once, and index the part's current
// tables on every launch.
func newMergedPart() *mergedPart {
	p := &mergedPart{}
	p.fused = func(g *device.Group) {
		sl := p.groups[g.ID()]
		e := p.entries[sl.e]
		e.P.fusedGroup(g, sl.s, e.U, e.Z, e.K)
	}
	p.resample = func(g *device.Group) {
		sl := p.groups[g.ID()]
		p.entries[sl.e].P.resampleGroup(g, sl.s)
	}
	return p
}

// run executes one round for the partition's pipelines, all sharing one
// work-group size. The three group-local kernels (rand, sampling, local
// sort) of all pipelines run as one merged *fused* launch — the batched
// serving path compounds both optimizations: B·N work-groups share a
// single grid (one launch instead of B), and the grid runs one fused
// body instead of three barrier-separated kernels (one launch instead
// of 3·B).
//
//esthera:hotpath noalloc bce
func (p *mergedPart) run(dev *device.Device) {
	p.groups = p.groups[:0]
	for i, e := range p.entries {
		for s := 0; s < e.P.cfg.SubFilters; s++ {
			p.groups = append(p.groups, batchSlot{e: i, s: s})
		}
	}
	grid := device.Grid{Groups: len(p.groups), GroupSize: p.entries[0].P.groupLanes()}

	dev.LaunchFused(fusedPhases, grid, p.fused)
	// No buffer swaps: each pipeline's fused body chains x → x2 → x.

	// Global estimate and particle exchange reduce across a pipeline's
	// whole sub-filter network; they stay per-pipeline.
	for _, e := range p.entries {
		state, lw := e.P.KernelEstimate()
		// The estimate buffer is pipeline-owned and reused next round;
		// the batch entry outlives it, so copy.
		e.State = append(e.State[:0], state...)
		e.LogW = lw
		e.P.KernelExchange()
	}

	dev.Launch("resampling", grid, p.resample)
	for _, e := range p.entries {
		e.P.cur, e.P.nxt = e.P.nxt, e.P.cur
	}
}
