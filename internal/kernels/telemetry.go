package kernels

import "esthera/internal/telemetry"

// Observability hooks on the Pipeline. Everything here reads filter
// state (log-weights, policy decisions) and writes only telemetry-side
// buffers, so enabling it never perturbs RNG consumption or float
// operation order — golden traces stay bit-identical (asserted in
// fused_test.go).

// SetTracer attaches a span tracer recording one "round" span per
// filtering round. Pass nil to detach. Call between rounds, not
// concurrently with one.
func (p *Pipeline) SetTracer(tr *telemetry.Tracer) { p.tracer = tr }

// SetHealthEvery enables stride-gated filter-health sampling: every
// k-th round, the estimate kernel snapshots ESS, weight degeneracy and
// resample acceptance from the current log-weights (after weighting,
// before exchange/resampling — the point where degeneracy shows).
// k <= 0 disables sampling; the gate costs one branch per round.
func (p *Pipeline) SetHealthEvery(k int) {
	if k < 0 {
		k = 0
	}
	p.healthEvery = k
}

// LastHealth returns the most recent stride-gated health sample; its
// Round field says which round it was taken at (zero value before the
// first sample).
func (p *Pipeline) LastHealth() telemetry.FilterHealth { return p.lastHealth }

// Rounds returns the number of filtering rounds completed (counted at
// the estimate kernel, which every round path passes through exactly
// once).
func (p *Pipeline) Rounds() int64 { return p.round }

// observeRound advances the round counter and, when the stride fires,
// captures a health sample. Called at the top of KernelEstimate: the
// log-weights are final for the round there, and the estimate kernel
// itself never modifies them.
func (p *Pipeline) observeRound() {
	p.round++
	if p.healthEvery <= 0 || p.round%int64(p.healthEvery) != 0 {
		return
	}
	accepted := 0
	for _, f := range p.resampleFlags {
		accepted += int(f)
	}
	h := telemetry.HealthFromLogWeights(p.logw, accepted, p.cfg.SubFilters)
	h.Round = p.round
	h.MinWindow, h.MaxWindow = p.windowBounds()
	h.Reallocations = p.reallocs
	p.lastHealth = h
}
