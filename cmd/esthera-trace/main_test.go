package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"esthera/internal/telemetry"
)

// TestConvertEmitsValidChromeTrace runs the built-in demo pipeline and
// schema-checks the converted output against the Chrome trace-event
// format: a top-level traceEvents array whose entries carry the
// required keys with the required types, complete "X" spans with
// microsecond timestamps, and at most one process-name metadata event.
func TestConvertEmitsValidChromeTrace(t *testing.T) {
	evs, err := demoEvents(demoOptions{rounds: 3, subFilters: 4, particles: 16, seed: 7, fused: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) == 0 {
		t.Fatal("demo pipeline recorded no spans")
	}

	var buf bytes.Buffer
	if err := telemetry.WriteChromeTrace(&buf, evs); err != nil {
		t.Fatal(err)
	}

	var doc struct {
		TraceEvents []map[string]json.RawMessage `json:"traceEvents"`
	}
	dec := json.NewDecoder(bytes.NewReader(buf.Bytes()))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		t.Fatalf("convert output is not a trace-event document: %v", err)
	}
	if len(doc.TraceEvents) != len(evs)+1 { // +1 process_name metadata
		t.Fatalf("got %d traceEvents, want %d", len(doc.TraceEvents), len(evs)+1)
	}

	var spans, meta int
	for i, raw := range doc.TraceEvents {
		var ph, name string
		mustField(t, i, raw, "ph", &ph)
		mustField(t, i, raw, "name", &name)
		var pid, tid int
		mustField(t, i, raw, "pid", &pid)
		mustField(t, i, raw, "tid", &tid)
		switch ph {
		case "X":
			spans++
			var ts, dur float64
			mustField(t, i, raw, "ts", &ts)
			mustField(t, i, raw, "dur", &dur)
			if ts < 0 || dur < 0 {
				t.Errorf("event %d (%s): negative ts/dur (%v/%v)", i, name, ts, dur)
			}
			if tid < 1 {
				t.Errorf("event %d (%s): X event tid %d, want >= 1", i, name, tid)
			}
		case "M":
			meta++
			if name != "process_name" {
				t.Errorf("event %d: metadata event named %q", i, name)
			}
		default:
			t.Errorf("event %d (%s): unexpected phase %q", i, name, ph)
		}
	}
	if spans != len(evs) {
		t.Errorf("got %d X spans, want %d", spans, len(evs))
	}
	if meta != 1 {
		t.Errorf("got %d metadata events, want 1", meta)
	}

	// The converted document must itself round-trip through ParseEvents
	// (convert -in accepts Chrome traces, not just the wire format).
	back, err := telemetry.ParseEvents(buf.Bytes())
	if err != nil {
		t.Fatalf("ParseEvents on convert output: %v", err)
	}
	if len(back) != len(evs) {
		t.Fatalf("round-trip kept %d events, want %d", len(back), len(evs))
	}
}

func mustField(t *testing.T, i int, raw map[string]json.RawMessage, key string, dst any) {
	t.Helper()
	v, ok := raw[key]
	if !ok {
		t.Fatalf("event %d: missing required key %q", i, key)
	}
	if err := json.Unmarshal(v, dst); err != nil {
		t.Fatalf("event %d: key %q: %v", i, key, err)
	}
}

// writeFile drops raw bytes into dir and returns the path.
func writeFile(t *testing.T, dir, name string, data []byte) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// writeTrace encodes a raw wire-format trace file.
func writeTrace(t *testing.T, dir, name string, meta telemetry.TraceMeta, evs []telemetry.Event) string {
	t.Helper()
	var buf bytes.Buffer
	if err := telemetry.EncodeTrace(&buf, meta, evs); err != nil {
		t.Fatal(err)
	}
	return writeFile(t, dir, name, buf.Bytes())
}

// TestCLIErrorPaths table-tests the subcommands against empty,
// truncated and malformed trace files plus bad flag values: every case
// must return an error (exit non-zero through fatalIf) without
// panicking, and the message must carry the offending path or entry.
func TestCLIErrorPaths(t *testing.T) {
	dir := t.TempDir()
	empty := writeFile(t, dir, "empty.json", nil)
	truncated := writeFile(t, dir, "truncated.json", []byte(`{"events":[{"name":"x"`))
	malformed := writeFile(t, dir, "malformed.json", []byte("this is not a trace\n"))
	noEvents := writeFile(t, dir, "noevents.json", []byte(`{"events":[],"process":"r1"}`+"\n"))
	missing := filepath.Join(dir, "does-not-exist.json")
	valid := writeTrace(t, dir, "valid.json",
		telemetry.TraceMeta{Process: "r1", EpochUnixNano: 1_000_000_000},
		[]telemetry.Event{{Name: "request", Cat: "serve", TS: time.Millisecond, Dur: time.Millisecond,
			Trace: telemetry.NewTraceID(), Span: telemetry.NewSpanID()}})

	denied := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "tracer disabled", http.StatusForbidden)
	}))
	defer denied.Close()

	cases := []struct {
		name string
		run  func() error
	}{
		{"summary missing file", func() error { return runSummary([]string{"-in", missing}) }},
		{"summary empty file", func() error { return runSummary([]string{"-in", empty}) }},
		{"summary truncated file", func() error { return runSummary([]string{"-in", truncated}) }},
		{"convert malformed file", func() error { return runConvert([]string{"-in", malformed, "-out", filepath.Join(dir, "out.json")}) }},
		{"top truncated file", func() error { return runTop([]string{"-in", truncated}) }},
		{"merge no files", func() error { return runMerge([]string{"-quiet"}) }},
		{"merge missing file", func() error { return runMerge([]string{"-quiet", missing}) }},
		{"merge empty file", func() error { return runMerge([]string{"-quiet", empty}) }},
		{"merge malformed file", func() error { return runMerge([]string{"-quiet", malformed}) }},
		{"merge zero-event file", func() error { return runMerge([]string{"-quiet", noEvents}) }},
		{"merge bad offsets entry", func() error { return runMerge([]string{"-quiet", "-offsets", "r1:5", valid}) }},
		{"merge non-numeric offset", func() error { return runMerge([]string{"-quiet", "-offsets", "r1=fast", valid}) }},
		{"merge bad shards file", func() error { return runMerge([]string{"-quiet", "-shards", malformed, valid}) }},
		{"merge missing shards file", func() error { return runMerge([]string{"-quiet", "-shards", missing, valid}) }},
		{"merge require-cross unmet", func() error {
			return runMerge([]string{"-quiet", "-require-cross", "failover.place", "-out", filepath.Join(dir, "m.json"), valid})
		}},
		{"fetch no url", func() error { return runFetch(nil) }},
		{"fetch two urls", func() error { return runFetch([]string{"http://a", "http://b"}) }},
		{"fetch bad status", func() error { return runFetch([]string{"-out", filepath.Join(dir, "f.json"), denied.URL + "/trace"}) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.run(); err == nil {
				t.Fatal("expected an error, got nil")
			}
		})
	}
}

// TestMergeAlignsCrossProcessTrace merges two per-process raw traces
// sharing one trace ID — the router's ingress span and the replica's
// request span — with a clock offset supplied both manually and via a
// /v1/shards snapshot, and checks the merged document is itself a
// parseable Chrome trace satisfying -require-cross.
func TestMergeAlignsCrossProcessTrace(t *testing.T) {
	dir := t.TempDir()
	trace := telemetry.NewTraceID()
	parent := telemetry.NewSpanID()
	routerFile := writeTrace(t, dir, "router.json",
		telemetry.TraceMeta{Process: "router", EpochUnixNano: 1_000_000_000},
		[]telemetry.Event{{Name: "route.step", Cat: "router", TS: time.Millisecond, Dur: 2 * time.Millisecond,
			Trace: trace, Span: parent}})
	// The replica's clock runs 5ms ahead (offset = remote - reference).
	replicaFile := writeTrace(t, dir, "r1.json",
		telemetry.TraceMeta{Process: "r1", EpochUnixNano: 1_000_000_000 + 5_000_000},
		[]telemetry.Event{{Name: "request", Cat: "serve", TS: 1500 * time.Microsecond, Dur: time.Millisecond,
			Trace: trace, Span: telemetry.NewSpanID(), Parent: parent}})
	shards := writeFile(t, dir, "shards.json",
		[]byte(`{"shards":[{"name":"r1","clock_offset_ns":5000000}]}`+"\n"))

	out := filepath.Join(dir, "merged.json")
	err := runMerge([]string{"-quiet", "-out", out, "-shards", shards, "-require-cross", "route.step",
		routerFile, replicaFile})
	if err != nil {
		t.Fatalf("merge: %v", err)
	}

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	evs, err := telemetry.ParseEvents(data)
	if err != nil {
		t.Fatalf("merged output does not parse: %v", err)
	}
	if len(evs) != 2 {
		t.Fatalf("merged output has %d span events, want 2", len(evs))
	}
	// Offset correction cancels the replica's 5ms lead: the replica's
	// request span starts 1.5ms after its (aligned) epoch, 0.5ms after
	// the router's route.step span.
	byName := map[string]telemetry.Event{}
	for _, ev := range evs {
		byName[ev.Name] = ev
	}
	gap := byName["request"].TS - byName["route.step"].TS
	if gap != 500*time.Microsecond {
		t.Fatalf("aligned start gap = %v, want 500µs", gap)
	}
	for _, ev := range evs {
		if ev.Trace != trace {
			t.Fatalf("merged span %q lost its trace ID: %s", ev.Name, ev.Trace)
		}
	}
}

// TestDemoRecordsHealthAndRounds asserts the demo pipeline's health
// sampling fired (it drives the same wiring esthera-serve uses).
func TestDemoRecordsHealthAndRounds(t *testing.T) {
	for _, fused := range []bool{false, true} {
		evs, err := demoEvents(demoOptions{rounds: 5, subFilters: 4, particles: 16, seed: 9, fused: fused})
		if err != nil {
			t.Fatal(err)
		}
		var rounds int
		for _, ev := range evs {
			if ev.Cat == "filter" && ev.Name == "round" {
				rounds++
			}
		}
		if rounds != 5 {
			t.Errorf("fused=%v: got %d round spans, want 5", fused, rounds)
		}
	}
}
