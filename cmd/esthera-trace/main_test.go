package main

import (
	"bytes"
	"encoding/json"
	"testing"

	"esthera/internal/telemetry"
)

// TestConvertEmitsValidChromeTrace runs the built-in demo pipeline and
// schema-checks the converted output against the Chrome trace-event
// format: a top-level traceEvents array whose entries carry the
// required keys with the required types, complete "X" spans with
// microsecond timestamps, and at most one process-name metadata event.
func TestConvertEmitsValidChromeTrace(t *testing.T) {
	evs, err := demoEvents(demoOptions{rounds: 3, subFilters: 4, particles: 16, seed: 7, fused: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) == 0 {
		t.Fatal("demo pipeline recorded no spans")
	}

	var buf bytes.Buffer
	if err := telemetry.WriteChromeTrace(&buf, evs); err != nil {
		t.Fatal(err)
	}

	var doc struct {
		TraceEvents []map[string]json.RawMessage `json:"traceEvents"`
	}
	dec := json.NewDecoder(bytes.NewReader(buf.Bytes()))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		t.Fatalf("convert output is not a trace-event document: %v", err)
	}
	if len(doc.TraceEvents) != len(evs)+1 { // +1 process_name metadata
		t.Fatalf("got %d traceEvents, want %d", len(doc.TraceEvents), len(evs)+1)
	}

	var spans, meta int
	for i, raw := range doc.TraceEvents {
		var ph, name string
		mustField(t, i, raw, "ph", &ph)
		mustField(t, i, raw, "name", &name)
		var pid, tid int
		mustField(t, i, raw, "pid", &pid)
		mustField(t, i, raw, "tid", &tid)
		switch ph {
		case "X":
			spans++
			var ts, dur float64
			mustField(t, i, raw, "ts", &ts)
			mustField(t, i, raw, "dur", &dur)
			if ts < 0 || dur < 0 {
				t.Errorf("event %d (%s): negative ts/dur (%v/%v)", i, name, ts, dur)
			}
			if tid < 1 {
				t.Errorf("event %d (%s): X event tid %d, want >= 1", i, name, tid)
			}
		case "M":
			meta++
			if name != "process_name" {
				t.Errorf("event %d: metadata event named %q", i, name)
			}
		default:
			t.Errorf("event %d (%s): unexpected phase %q", i, name, ph)
		}
	}
	if spans != len(evs) {
		t.Errorf("got %d X spans, want %d", spans, len(evs))
	}
	if meta != 1 {
		t.Errorf("got %d metadata events, want 1", meta)
	}

	// The converted document must itself round-trip through ParseEvents
	// (convert -in accepts Chrome traces, not just the wire format).
	back, err := telemetry.ParseEvents(buf.Bytes())
	if err != nil {
		t.Fatalf("ParseEvents on convert output: %v", err)
	}
	if len(back) != len(evs) {
		t.Fatalf("round-trip kept %d events, want %d", len(back), len(evs))
	}
}

func mustField(t *testing.T, i int, raw map[string]json.RawMessage, key string, dst any) {
	t.Helper()
	v, ok := raw[key]
	if !ok {
		t.Fatalf("event %d: missing required key %q", i, key)
	}
	if err := json.Unmarshal(v, dst); err != nil {
		t.Fatalf("event %d: key %q: %v", i, key, err)
	}
}

// TestDemoRecordsHealthAndRounds asserts the demo pipeline's health
// sampling fired (it drives the same wiring esthera-serve uses).
func TestDemoRecordsHealthAndRounds(t *testing.T) {
	for _, fused := range []bool{false, true} {
		evs, err := demoEvents(demoOptions{rounds: 5, subFilters: 4, particles: 16, seed: 9, fused: fused})
		if err != nil {
			t.Fatal(err)
		}
		var rounds int
		for _, ev := range evs {
			if ev.Cat == "filter" && ev.Name == "round" {
				rounds++
			}
		}
		if rounds != 5 {
			t.Errorf("fused=%v: got %d round spans, want 5", fused, rounds)
		}
	}
}
