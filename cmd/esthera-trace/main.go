// Command esthera-trace is the tracing toolbox. Without a subcommand it
// regenerates Figure 8 (the lemniscate ground truth with converging and
// diverging filter traces, as CSV or an ASCII chart). The subcommands
// work with the span tracer in internal/telemetry:
//
//	esthera-trace convert -in spans.json -out trace.json
//	    Convert recorded span events (the /trace wire format or an
//	    already-converted Chrome trace) to Chrome trace-event JSON,
//	    loadable in chrome://tracing or https://ui.perfetto.dev.
//	    Without -in, a built-in demo pipeline runs traced rounds and
//	    converts its own spans — a one-command way to get a real trace.
//
//	esthera-trace summary -in spans.json
//	    Aggregate spans by name: count, total, mean and max duration.
//
//	esthera-trace top -in spans.json -n 10
//	    The n longest individual spans.
//
//	esthera-trace fetch -out r1.json http://replica:8080/trace?format=raw
//	    Drain one process's spans over HTTP into a file.
//
//	esthera-trace merge -out swarm.json -shards shards.json r1.json r2.json router.json
//	    Align N per-process raw trace files onto one timeline (using the
//	    router's NTP-style clock-offset estimates from /v1/shards) and
//	    emit a single Chrome trace with one track per process. Spans of
//	    one request share a trace ID across processes; -require-cross
//	    exits non-zero unless a cross-process trace contains the named
//	    span (the chaos harness's failover assertion).
//
//	esthera-trace fig8 -steps 200 -csv fig8.csv
//	    The legacy Figure 8 generator, also the default when no
//	    subcommand is given.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"esthera/internal/device"
	"esthera/internal/exchange"
	"esthera/internal/experiments"
	"esthera/internal/kernels"
	"esthera/internal/model"
	"esthera/internal/plot"
	"esthera/internal/rng"
	"esthera/internal/telemetry"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "convert":
			fatalIf(runConvert(os.Args[2:]))
			return
		case "summary":
			fatalIf(runSummary(os.Args[2:]))
			return
		case "top":
			fatalIf(runTop(os.Args[2:]))
			return
		case "merge":
			fatalIf(runMerge(os.Args[2:]))
			return
		case "fetch":
			fatalIf(runFetch(os.Args[2:]))
			return
		case "fig8":
			runFig8(os.Args[2:])
			return
		}
	}
	runFig8(os.Args[1:])
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "esthera-trace:", err)
		os.Exit(1)
	}
}

// loadEvents reads span events from a file (either the /trace wire
// format or Chrome trace JSON), or, when path is empty, runs the
// built-in demo pipeline and returns its spans.
func loadEvents(path string, d demoOptions) ([]telemetry.Event, error) {
	if path != "" {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		evs, err := telemetry.ParseEvents(data)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return evs, nil
	}
	return demoEvents(d)
}

// demoOptions sizes the built-in traced pipeline run.
type demoOptions struct {
	rounds, subFilters, particles int
	seed                          uint64
	fused                         bool
}

func (d *demoOptions) flags(fs *flag.FlagSet) {
	fs.IntVar(&d.rounds, "rounds", 20, "demo: filtering rounds to trace (with -in unset)")
	fs.IntVar(&d.subFilters, "subfilters", 8, "demo: sub-filters")
	fs.IntVar(&d.particles, "particles", 64, "demo: particles per sub-filter")
	fs.Uint64Var(&d.seed, "seed", 0xE57, "demo: master seed")
	fs.BoolVar(&d.fused, "fused", true, "demo: use the fused per-group round")
}

// demoEvents runs a traced UNGM pipeline and drains its spans: device
// launches (and fused phases), per-round filter spans, health sampling.
func demoEvents(d demoOptions) ([]telemetry.Event, error) {
	dev := device.New(device.Config{LocalMemBytes: -1})
	defer dev.Close()
	tr := telemetry.New(telemetry.Config{})
	tr.SetEnabled(true)
	dev.SetTracer(tr)

	mdl := model.NewUNGM()
	top, err := exchange.NewTopology(exchange.Ring, d.subFilters)
	if err != nil {
		return nil, err
	}
	pipe, err := kernels.New(dev, mdl, kernels.Config{
		SubFilters: d.subFilters, ParticlesPer: d.particles,
		ExchangeCount: 1, Topology: top,
	}, d.seed)
	if err != nil {
		return nil, err
	}
	pipe.SetTracer(tr)
	pipe.SetHealthEvery(1)

	sc := model.NewSimulated(mdl, d.seed^0x9E3779B9)
	truth := make([]float64, mdl.StateDim())
	z := make([]float64, mdl.MeasurementDim())
	u := make([]float64, mdl.ControlDim())
	measR := rng.New(rng.NewPhiloxStream(d.seed, 0xFACE))
	for k := 1; k <= d.rounds; k++ {
		sc.TrueState(k, truth)
		sc.Control(k, u)
		mdl.Measure(z, truth, measR)
		if d.fused {
			pipe.RoundFused(u, z, k)
		} else {
			pipe.Round(u, z, k)
		}
	}
	return tr.Drain(), nil
}

func runConvert(args []string) error {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	in := fs.String("in", "", "span events file (empty: run the built-in demo pipeline)")
	out := fs.String("out", "", "output file (empty: stdout)")
	var d demoOptions
	d.flags(fs)
	_ = fs.Parse(args)

	evs, err := loadEvents(*in, d)
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := telemetry.WriteChromeTrace(w, evs); err != nil {
		return err
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "%d events written to %s\n", len(evs), *out)
	}
	return nil
}

func runSummary(args []string) error {
	fs := flag.NewFlagSet("summary", flag.ExitOnError)
	in := fs.String("in", "", "span events file (empty: run the built-in demo pipeline)")
	var d demoOptions
	d.flags(fs)
	_ = fs.Parse(args)

	evs, err := loadEvents(*in, d)
	if err != nil {
		return err
	}
	sums := telemetry.Summarize(evs)
	fmt.Printf("%-24s %-10s %8s %14s %14s %14s\n", "name", "cat", "count", "total", "mean", "max")
	for _, s := range sums {
		fmt.Printf("%-24s %-10s %8d %14s %14s %14s\n",
			s.Name, s.Cat, s.Count, fmtDur(s.Total), fmtDur(s.Mean()), fmtDur(s.Max))
	}
	return nil
}

func runTop(args []string) error {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	in := fs.String("in", "", "span events file (empty: run the built-in demo pipeline)")
	n := fs.Int("n", 10, "spans to show")
	var d demoOptions
	d.flags(fs)
	_ = fs.Parse(args)

	evs, err := loadEvents(*in, d)
	if err != nil {
		return err
	}
	fmt.Printf("%-24s %-10s %14s %14s\n", "name", "cat", "start", "duration")
	for _, ev := range telemetry.Top(evs, *n) {
		fmt.Printf("%-24s %-10s %14s %14s\n", ev.Name, ev.Cat, fmtDur(ev.TS), fmtDur(ev.Dur))
	}
	return nil
}

func fmtDur(d time.Duration) string { return d.Round(time.Microsecond).String() }

// runMerge aligns N per-process raw trace files onto one timeline and
// writes a single Chrome trace with one track (pid) per process.
func runMerge(args []string) error {
	fs := flag.NewFlagSet("merge", flag.ExitOnError)
	out := fs.String("out", "", "output file (empty: stdout)")
	shardsPath := fs.String("shards", "", "router /v1/shards JSON supplying per-process clock offsets")
	offsetsArg := fs.String("offsets", "", "manual clock offsets as name=ns[,name=ns...] (override -shards)")
	requireCross := fs.String("require-cross", "", "exit non-zero unless a cross-process trace contains this span name")
	quiet := fs.Bool("quiet", false, "suppress the stats line on stderr")
	_ = fs.Parse(args)
	files := fs.Args()
	if len(files) == 0 {
		return fmt.Errorf("merge needs at least one trace file (GET /trace?format=raw output)")
	}

	offsets, err := loadOffsets(*shardsPath, *offsetsArg)
	if err != nil {
		return err
	}
	procs := make([]telemetry.ProcessTrace, 0, len(files))
	for i, path := range files {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		meta, evs, err := telemetry.ParseTrace(data)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		if len(evs) == 0 {
			return fmt.Errorf("%s: no span events (empty drain, or not a trace file)", path)
		}
		if meta.Process == "" {
			meta.Process = fmt.Sprintf("proc-%d", i)
		}
		procs = append(procs, telemetry.ProcessTrace{Meta: meta, OffsetNS: offsets[meta.Process], Events: evs})
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	stats, cross, err := telemetry.MergeTraces(w, procs)
	if err != nil {
		return err
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "merged %d processes, %d events, %d traces (%d cross-process)\n",
			stats.Processes, stats.Events, stats.Traces, stats.CrossProcessTraces)
	}
	if *requireCross != "" {
		for _, ct := range cross {
			for _, span := range ct.Spans {
				if span == *requireCross {
					if !*quiet {
						fmt.Fprintf(os.Stderr, "cross-process trace %s spans %v via %q\n",
							ct.Trace, ct.Processes, *requireCross)
					}
					return nil
				}
			}
		}
		return fmt.Errorf("no cross-process trace contains span %q (%d cross-process traces checked)",
			*requireCross, len(cross))
	}
	return nil
}

// loadOffsets builds the process → clock-offset (ns) map from the
// router's /v1/shards snapshot and/or manual name=ns overrides.
func loadOffsets(shardsPath, manual string) (map[string]int64, error) {
	offsets := make(map[string]int64)
	if shardsPath != "" {
		data, err := os.ReadFile(shardsPath)
		if err != nil {
			return nil, err
		}
		var doc struct {
			Shards []struct {
				Name          string `json:"name"`
				ClockOffsetNS int64  `json:"clock_offset_ns"`
			} `json:"shards"`
		}
		if err := json.Unmarshal(data, &doc); err != nil {
			return nil, fmt.Errorf("%s: not a /v1/shards snapshot: %w", shardsPath, err)
		}
		for _, sh := range doc.Shards {
			offsets[sh.Name] = sh.ClockOffsetNS
		}
	}
	if manual != "" {
		for _, pair := range strings.Split(manual, ",") {
			name, ns, ok := strings.Cut(strings.TrimSpace(pair), "=")
			if !ok {
				return nil, fmt.Errorf("bad -offsets entry %q, want name=ns", pair)
			}
			v, err := strconv.ParseInt(ns, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad -offsets entry %q: %v", pair, err)
			}
			offsets[name] = v
		}
	}
	return offsets, nil
}

// runFetch drains one process's trace endpoint into a file.
func runFetch(args []string) error {
	fs := flag.NewFlagSet("fetch", flag.ExitOnError)
	out := fs.String("out", "", "output file (empty: stdout)")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("fetch needs exactly one URL (e.g. http://replica:8080/trace?format=raw)")
	}
	url := fs.Arg(0)
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("fetch %s: status %d: %s", url, resp.StatusCode, body)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	_, err = io.Copy(w, resp.Body)
	return err
}

// runFig8 is the legacy default: regenerate Figure 8 — the lemniscate
// ground truth with a converging high-particle trace and a diverging
// low-particle trace — as CSV or an ASCII chart, plus the §VIII-A
// convergence verdicts.
func runFig8(args []string) {
	fs := flag.NewFlagSet("fig8", flag.ExitOnError)
	var (
		steps    = fs.Int("steps", 160, "trace length in steps")
		seed     = fs.Uint64("seed", 0xE57, "master seed")
		joints   = fs.Int("joints", 5, "arm joints")
		csvPath  = fs.String("csv", "", "write the trace as CSV to this file (default: stdout table)")
		ascii    = fs.Bool("plot", false, "render the traces as an ASCII chart instead of the table")
		plotSize = fs.String("plot-size", "72x28", "ASCII chart size as WxH")
	)
	_ = fs.Parse(args)

	res, err := experiments.Fig8Trajectory(experiments.AccuracyOptions{Seed: *seed, Joints: *joints}, *steps)
	if err != nil {
		fmt.Fprintln(os.Stderr, "esthera-trace:", err)
		os.Exit(1)
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "esthera-trace:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := res.Table.WriteCSV(f); err != nil {
			fmt.Fprintln(os.Stderr, "esthera-trace:", err)
			os.Exit(1)
		}
		fmt.Printf("trace written to %s\n", *csvPath)
	} else if *ascii {
		w, h := parseSize(*plotSize)
		cols := func(c int) ([]float64, []float64) {
			xs := make([]float64, len(res.Table.Rows))
			ys := make([]float64, len(res.Table.Rows))
			for i, row := range res.Table.Rows {
				xs[i], _ = strconv.ParseFloat(row[c], 64)
				ys[i], _ = strconv.ParseFloat(row[c+1], 64)
			}
			return xs, ys
		}
		tx, ty := cols(1)
		hx, hy := cols(3)
		lx, ly := cols(5)
		fmt.Print(plot.Render("Fig. 8 — lemniscate ground truth and filter traces", w, h,
			plot.Series{Name: "ground truth", Glyph: '.', Connect: true, XS: tx, YS: ty},
			plot.Series{Name: "high-particle estimate", Glyph: 'o', XS: hx, YS: hy},
			plot.Series{Name: "low-particle estimate", Glyph: 'x', XS: lx, YS: ly},
		))
	} else {
		res.Table.Fprint(os.Stdout)
	}
	fmt.Printf("high-particle trace: trailing error %.3f m, converged=%v\n", res.HighTrailing, res.HighConverged)
	fmt.Printf("low-particle trace:  trailing error %.3f m, converged=%v\n", res.LowTrailing, res.LowConverged)
}

func parseSize(s string) (w, h int) {
	w, h = 72, 28
	var pw, ph int
	if _, err := fmt.Sscanf(s, "%dx%d", &pw, &ph); err == nil && pw > 0 && ph > 0 {
		w, h = pw, ph
	}
	return
}
