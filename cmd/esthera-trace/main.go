// Command esthera-trace regenerates Figure 8: the lemniscate ground
// truth with a converging high-particle trace and a diverging
// low-particle trace, emitted as CSV for plotting, plus the §VIII-A
// convergence verdicts.
//
// Example:
//
//	esthera-trace -steps 200 -csv fig8.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"esthera/internal/experiments"
	"esthera/internal/plot"
)

func main() {
	var (
		steps    = flag.Int("steps", 160, "trace length in steps")
		seed     = flag.Uint64("seed", 0xE57, "master seed")
		joints   = flag.Int("joints", 5, "arm joints")
		csvPath  = flag.String("csv", "", "write the trace as CSV to this file (default: stdout table)")
		ascii    = flag.Bool("plot", false, "render the traces as an ASCII chart instead of the table")
		plotSize = flag.String("plot-size", "72x28", "ASCII chart size as WxH")
	)
	flag.Parse()

	res, err := experiments.Fig8Trajectory(experiments.AccuracyOptions{Seed: *seed, Joints: *joints}, *steps)
	if err != nil {
		fmt.Fprintln(os.Stderr, "esthera-trace:", err)
		os.Exit(1)
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "esthera-trace:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := res.Table.WriteCSV(f); err != nil {
			fmt.Fprintln(os.Stderr, "esthera-trace:", err)
			os.Exit(1)
		}
		fmt.Printf("trace written to %s\n", *csvPath)
	} else if *ascii {
		w, h := parseSize(*plotSize)
		cols := func(c int) ([]float64, []float64) {
			xs := make([]float64, len(res.Table.Rows))
			ys := make([]float64, len(res.Table.Rows))
			for i, row := range res.Table.Rows {
				xs[i], _ = strconv.ParseFloat(row[c], 64)
				ys[i], _ = strconv.ParseFloat(row[c+1], 64)
			}
			return xs, ys
		}
		tx, ty := cols(1)
		hx, hy := cols(3)
		lx, ly := cols(5)
		fmt.Print(plot.Render("Fig. 8 — lemniscate ground truth and filter traces", w, h,
			plot.Series{Name: "ground truth", Glyph: '.', Connect: true, XS: tx, YS: ty},
			plot.Series{Name: "high-particle estimate", Glyph: 'o', XS: hx, YS: hy},
			plot.Series{Name: "low-particle estimate", Glyph: 'x', XS: lx, YS: ly},
		))
	} else {
		res.Table.Fprint(os.Stdout)
	}
	fmt.Printf("high-particle trace: trailing error %.3f m, converged=%v\n", res.HighTrailing, res.HighConverged)
	fmt.Printf("low-particle trace:  trailing error %.3f m, converged=%v\n", res.LowTrailing, res.LowConverged)
}

func parseSize(s string) (w, h int) {
	w, h = 72, 28
	var pw, ph int
	if _, err := fmt.Sscanf(s, "%dx%d", &pw, &ph); err == nil && pw > 0 && ph > 0 {
		w, h = pw, ph
	}
	return
}
