// Command esthera-accuracy regenerates the paper's accuracy artifacts:
// Figure 6 (estimation error per exchange scheme), Figure 7 (error vs
// exchanged particle count), Figure 9 (distributed vs centralized
// overhead), and the ablations of §IV / §III-B (resampling policy, filter
// variants, estimate operator).
//
// Examples:
//
//	esthera-accuracy -fig 6
//	esthera-accuracy -fig 9 -runs 20 -steps 100
//	esthera-accuracy -exp variants
package main

import (
	"flag"
	"fmt"
	"os"

	"esthera/internal/experiments"
)

func main() {
	var (
		fig     = flag.String("fig", "", "figure: 6, 7, 9 (empty with -exp empty = all)")
		exp     = flag.String("exp", "", "ablation: policy, variants, estimator, diversity, precision, embedded, closedloop, adaptive")
		gate    = flag.Float64("gate", 0, "with -exp adaptive: fail (exit 1) unless every adaptive/Metropolis error is within this ratio of the fixed RWS/Vose baseline (0 = report only)")
		runs    = flag.Int("runs", 8, "independent runs per configuration (paper: 100)")
		steps   = flag.Int("steps", 60, "filtering steps per run (paper: 100)")
		seed    = flag.Uint64("seed", 0xE57, "master seed")
		joints  = flag.Int("joints", 5, "arm joints")
		workers = flag.Int("workers", 0, "host device workers (0 = GOMAXPROCS)")
		csvPath = flag.String("csv", "", "also write the table(s) as CSV to this file")
	)
	flag.Parse()

	o := experiments.AccuracyOptions{
		Steps: *steps, Runs: *runs, Seed: *seed, Joints: *joints, Workers: *workers,
	}

	var tables []*experiments.Table
	var adaptive *experiments.AdaptiveResult
	add := func(ts []*experiments.Table, err error) {
		if err != nil {
			fatal(err)
		}
		tables = append(tables, ts...)
	}
	one := func(t *experiments.Table, err error) {
		add([]*experiments.Table{t}, err)
	}
	figs := map[string]func(){
		"6": func() { add(experiments.Fig6ExchangeSchemes(o)) },
		"7": func() { one(experiments.Fig7ExchangeCount(o)) },
		"9": func() { one(experiments.Fig9DistributedOverhead(o, nil, nil)) },
	}
	exps := map[string]func(){
		"policy":     func() { one(experiments.PolicyAblation(o)) },
		"variants":   func() { one(experiments.VariantsAblation(o)) },
		"estimator":  func() { one(experiments.EstimatorAblation(o)) },
		"diversity":  func() { one(experiments.DiversityAblation(o)) },
		"precision":  func() { one(experiments.PrecisionAblation(o)) },
		"embedded":   func() { one(experiments.EmbeddedScaleDown(o)) },
		"closedloop": func() { one(experiments.ClosedLoopAblation(o)) },
		"adaptive": func() {
			r, err := experiments.AdaptiveAblation(o)
			if err != nil {
				fatal(err)
			}
			adaptive = r
			tables = append(tables, r.Table)
		},
	}
	switch {
	case *fig == "" && *exp == "":
		for _, k := range []string{"6", "7", "9"} {
			figs[k]()
		}
		for _, k := range []string{"policy", "variants", "estimator", "diversity", "precision", "embedded", "closedloop", "adaptive"} {
			exps[k]()
		}
	case *fig != "":
		r, ok := figs[*fig]
		if !ok {
			fatal(fmt.Errorf("unknown figure %q", *fig))
		}
		r()
	default:
		r, ok := exps[*exp]
		if !ok {
			fatal(fmt.Errorf("unknown ablation %q", *exp))
		}
		r()
	}

	for _, t := range tables {
		t.Fprint(os.Stdout)
	}
	if *gate > 0 {
		if adaptive == nil {
			fatal(fmt.Errorf("-gate requires -exp adaptive"))
		}
		if err := adaptive.Gate(*gate); err != nil {
			fatal(err)
		}
		fmt.Printf("adaptive gate: ok — worst candidate %.4g vs baseline %.4g (ratio limit %.2f)\n",
			adaptive.Worst, adaptive.Baseline, *gate)
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		for _, t := range tables {
			fmt.Fprintf(f, "# %s\n", t.Title)
			if err := t.WriteCSV(f); err != nil {
				fatal(err)
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "esthera-accuracy:", err)
	os.Exit(1)
}
