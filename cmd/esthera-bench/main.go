// Command esthera-bench regenerates the paper's performance artifacts:
// Figure 3 (update rate vs particles across platforms), Figures 4a–4c
// (kernel-time breakdowns) and Figure 5 (RWS vs Vose resampling runtime),
// plus the Table III platform listing.
//
// Platform columns are analytic cost-model predictions driven by the
// instrumented device kernels (see DESIGN.md §2); host columns are
// measured Go wall times.
//
// Examples:
//
//	esthera-bench -fig 3                 # reduced sweep
//	esthera-bench -fig 3 -full           # paper-scale sweep (1K–2M)
//	esthera-bench -fig 4a -csv out.csv
//	esthera-bench -list-platforms
package main

import (
	"flag"
	"fmt"
	"os"

	"esthera/internal/experiments"
	"esthera/internal/platform"
)

func main() {
	var (
		fig     = flag.String("fig", "", "figure to regenerate: 3, 4a, 4b, 4c, 4cpu, 5 (empty = all)")
		full    = flag.Bool("full", false, "paper-scale sweeps (slow: up to 2M particles)")
		csvPath = flag.String("csv", "", "also write the table(s) as CSV to this file")
		list    = flag.Bool("list-platforms", false, "print the Table III platform descriptors and exit")
		workers = flag.Int("workers", 0, "host device workers (0 = GOMAXPROCS)")
		rounds  = flag.Int("rounds", 3, "filtering rounds per measurement")
		subSize = flag.Int("m", 128, "particles per sub-filter")
		joints  = flag.Int("joints", 5, "arm joints")
	)
	flag.Parse()

	if *list {
		listPlatforms()
		return
	}

	o := experiments.PerfOptions{
		SubFilterSize: *subSize,
		Rounds:        *rounds,
		Joints:        *joints,
		Workers:       *workers,
	}
	if !*full {
		o.Totals = []int{1 << 10, 1 << 13, 1 << 16, 1 << 18}
	}

	var tables []*experiments.Table
	add := func(t *experiments.Table, err error) {
		if err != nil {
			fatal(err)
		}
		tables = append(tables, t)
	}
	run := map[string]func(){
		"3":    func() { add(experiments.Fig3UpdateRate(o)) },
		"4a":   func() { add(experiments.Fig4aParticlesPerSubFilter(o, fig4aSizes(*full))) },
		"4b":   func() { add(experiments.Fig4bSubFilters(o, fig4bCounts(*full))) },
		"4c":   func() { add(experiments.Fig4cStateDims(o, nil)) },
		"4cpu": func() { add(experiments.Fig4CPUBreakdown(o, nil)) },
		"5":    func() { add(experiments.Fig5Resampling(o)) },
	}
	if *fig == "" {
		for _, k := range []string{"3", "4a", "4b", "4c", "4cpu", "5"} {
			run[k]()
		}
	} else if r, ok := run[*fig]; ok {
		r()
	} else {
		fatal(fmt.Errorf("unknown figure %q", *fig))
	}

	for _, t := range tables {
		t.Fprint(os.Stdout)
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		for _, t := range tables {
			fmt.Fprintf(f, "# %s\n", t.Title)
			if err := t.WriteCSV(f); err != nil {
				fatal(err)
			}
		}
	}
}

func fig4aSizes(full bool) []int {
	if full {
		return []int{32, 64, 128, 256, 512, 1024}
	}
	return []int{32, 128, 512}
}

func fig4bCounts(full bool) []int {
	if full {
		return []int{64, 256, 1024, 4096, 8192}
	}
	return []int{64, 512, 2048}
}

func listPlatforms() {
	t := &experiments.Table{
		Title: "Table III — hardware platforms",
		Header: []string{"platform", "type", "units", "clock GHz", "SP GFLOP/s",
			"mem GB/s", "TDP W", "released"},
	}
	for _, p := range platform.Platforms() {
		t.Append(p.Name, string(p.Kind), p.Units, p.ClockGHz, p.GFlopsSP, p.MemBWGBs, p.TDPWatts, p.Released)
	}
	t.Notes = append(t.Notes, "seq-c models the paper's single-core sequential C reference")
	t.Fprint(os.Stdout)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "esthera-bench:", err)
	os.Exit(1)
}
