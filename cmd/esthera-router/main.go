// Command esthera-router fronts N esthera-serve replicas as one
// serving surface: sessions are consistent-hashed onto shards, step
// and estimate requests forward with the retrying client, and the
// router live-migrates sessions between replicas — for failover when
// a shard dies (detected by transport health probes) and for load
// rebalancing when one shard runs hot.
//
// Each shard is named by three fields joined with "|":
//
//	name|http-base-url|transport-addr
//
// and shards are separated by commas:
//
//	esthera-router -addr :8080 \
//	  -shards 'a|http://127.0.0.1:8081|127.0.0.1:9081,b|http://127.0.0.1:8082|127.0.0.1:9082'
//
// The HTTP surface is a superset of esthera-serve's (a serve client
// works unchanged), plus:
//
//	POST /v1/sessions/{id}/migrate  {"target": "b"}   live migration ("" = least loaded)
//	POST /v1/rebalance                                level load across live shards
//	GET  /v1/shards                                   per-shard liveness and placement
//	GET  /metrics                                     router counters + every replica's stats
//
// -snapshot periodically refreshes every session's failover-insurance
// checkpoint over the transport, bounding how far a crash-failover can
// roll a session back. On SIGINT/SIGTERM the router stops probing and
// exits; replicas and their sessions are left running.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"esthera/internal/shard"
	"esthera/internal/telemetry"
	tlog "esthera/internal/telemetry/log"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		shards    = flag.String("shards", "", "comma-separated shard specs: name|http-base-url|transport-addr")
		vnodes    = flag.Int("vnodes", 0, "consistent-hash virtual nodes per shard (0 = 64)")
		probe     = flag.Duration("probe", 0, "transport health probe interval (0 = 500ms, negative disables)")
		failAfter = flag.Int("fail-after", 0, "consecutive failures before a shard is marked down (0 = 3)")
		rebalance = flag.Int("rebalance-threshold", 0, "migrate load when the busiest shard exceeds the idlest by more than this many sessions (0 = off)")
		retryHint = flag.Duration("retry-hint", 0, "Retry-After hint on migration/failover 503s (0 = 15ms)")
		snapshot  = flag.Duration("snapshot", 0, "failover-insurance checkpoint refresh interval (0 = off)")
		trace     = flag.Bool("trace", false, "start with span recording enabled (toggle at runtime via POST /trace)")
		logLevel  = flag.String("log-level", "info", "structured log level: debug, info, warn, error, off (runtime via POST /logz)")
		version   = flag.Bool("version", false, "print the build string and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println(telemetry.BuildString())
		return
	}
	lv, err := tlog.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "esthera-router:", err)
		os.Exit(2)
	}
	specs, err := parseShards(*shards)
	if err != nil {
		fmt.Fprintln(os.Stderr, "esthera-router:", err)
		os.Exit(2)
	}
	r, err := shard.NewRouter(shard.RouterConfig{
		Shards:             specs,
		Vnodes:             *vnodes,
		ProbeInterval:      *probe,
		FailAfter:          *failAfter,
		RebalanceThreshold: *rebalance,
		RetryAfter:         *retryHint,
		Trace:              *trace,
		LogLevel:           lv,
		LogSink:            os.Stderr,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "esthera-router:", err)
		os.Exit(2)
	}
	defer r.Close()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *snapshot > 0 {
		go func() {
			tick := time.NewTicker(*snapshot)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					r.Snapshot(ctx)
				}
			}
		}()
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           shard.NewRouterHandler(r),
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "%s router listening on %s, %d shards\n", telemetry.BuildString(), *addr, len(specs))

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = srv.Shutdown(shutdownCtx)
}

// parseShards splits "name|url|transport,name|url|transport" into
// shard specs. The transport field may be empty (failover then
// recreates from spec instead of restoring checkpoints, and liveness
// rides only on step errors).
func parseShards(s string) ([]shard.ShardSpec, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("-shards is required (name|http-base-url|transport-addr, comma-separated)")
	}
	var specs []shard.ShardSpec
	for _, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		parts := strings.Split(entry, "|")
		if len(parts) < 2 || len(parts) > 3 {
			return nil, fmt.Errorf("bad shard spec %q: want name|http-base-url|transport-addr", entry)
		}
		sp := shard.ShardSpec{Name: strings.TrimSpace(parts[0]), BaseURL: strings.TrimSpace(parts[1])}
		if len(parts) == 3 {
			sp.TransportAddr = strings.TrimSpace(parts[2])
		}
		specs = append(specs, sp)
	}
	return specs, nil
}
