// Command esthera-cluster runs the §IX scale-up experiments: weak
// scaling of the distributed particle filter over simulated cluster
// nodes with a network cost model, and node-failure injection.
//
// Examples:
//
//	esthera-cluster                 # both experiments
//	esthera-cluster -exp scaling -nodes 1,2,4,8,16
//	esthera-cluster -exp failure
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"esthera/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment: scaling, failure (empty = both)")
		nodes   = flag.String("nodes", "1,2,4,8", "comma-separated node counts for -exp scaling")
		runs    = flag.Int("runs", 4, "runs per configuration")
		steps   = flag.Int("steps", 60, "steps per run")
		seed    = flag.Uint64("seed", 0xE57, "master seed")
		joints  = flag.Int("joints", 5, "arm joints")
		workers = flag.Int("workers", 0, "host workers")
	)
	flag.Parse()

	o := experiments.AccuracyOptions{
		Steps: *steps, Runs: *runs, Seed: *seed, Joints: *joints, Workers: *workers,
	}
	counts, err := parseCounts(*nodes)
	if err != nil {
		fatal(err)
	}

	var tables []*experiments.Table
	if *exp == "" || *exp == "scaling" {
		t, err := experiments.ClusterScaling(o, counts)
		if err != nil {
			fatal(err)
		}
		tables = append(tables, t)
	}
	if *exp == "" || *exp == "failure" {
		t, err := experiments.ClusterFailure(o)
		if err != nil {
			fatal(err)
		}
		tables = append(tables, t)
	}
	if len(tables) == 0 {
		fatal(fmt.Errorf("unknown experiment %q", *exp))
	}
	for _, t := range tables {
		t.Fprint(os.Stdout)
	}
}

func parseCounts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad node count %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no node counts given")
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "esthera-cluster:", err)
	os.Exit(1)
}
