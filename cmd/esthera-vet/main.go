// Command esthera-vet is the repository's custom static-analysis gate:
// a multichecker over the determinism and work-group-safety analyzers
// of internal/analysis. It is run by scripts/verify.sh and `make lint`
// and must exit clean before a change merges.
//
// Usage:
//
//	esthera-vet ./...   # check the whole module (the only scope)
//	esthera-vet -list   # list registered analyzers
//	esthera-vet -require esthera/internal/telemetry ./...
//	                    # fail unless the named package is in the sweep
//
// Deliberate, reviewed exceptions are suppressed in place with an
//
//	//esthera:allow <analyzer> -- rationale
//
// comment on the finding's line or the line above it.
package main

import (
	"os"

	"esthera/internal/analysis"
)

func main() {
	os.Exit(analysis.Main(os.Args[1:], os.Stdout, os.Stderr, analysis.Suite()))
}
