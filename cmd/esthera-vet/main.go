// Command esthera-vet is the repository's custom static-analysis gate:
// a multichecker over the determinism and work-group-safety analyzers
// of internal/analysis. It is run by scripts/verify.sh and `make lint`
// and must exit clean before a change merges.
//
// Usage:
//
//	esthera-vet ./...     # check the whole module (the only scope)
//	esthera-vet -list     # list registered analyzers
//	esthera-vet -run bce  # run a comma-separated subset of analyzers
//	esthera-vet -ratchet  # recompute scripts/bce_baseline.txt and exit
//	esthera-vet -require esthera/internal/telemetry ./...
//	                      # fail unless the named package is in the sweep
//
// Beyond the pure AST analyzers, the suite reads real compiler
// diagnostics (go build -gcflags='-m -d=ssa/check_bce') for functions
// annotated
//
//	//esthera:hotpath <contract> [<contract>...]
//
// in their doc comment: "noalloc" (escape analysis must show no heap
// allocation, device-arena grow paths excepted) and "bce" (no new
// per-element-loop bounds checks beyond the scripts/bce_baseline.txt
// budget; refresh a reviewed change with -ratchet / `make vet-ratchet`).
//
// Deliberate, reviewed exceptions are suppressed in place with an
//
//	//esthera:allow <analyzer> -- rationale
//
// comment on the finding's line or the line above it; the directive
// analyzer rejects unknown analyzer names and malformed hotpath
// contracts, so a typo cannot silently mask nothing.
package main

import (
	"os"

	"esthera/internal/analysis"
)

func main() {
	os.Exit(analysis.Main(os.Args[1:], os.Stdout, os.Stderr, analysis.Suite()))
}
