// Command esthera runs a particle filter against one of the bundled
// benchmark scenarios and reports per-step estimation error and the
// achieved update rate.
//
// Examples:
//
//	esthera -model arm -joints 5 -subfilters 120 -m 128 -steps 100
//	esthera -model ungm -filter centralized -particles 4096
//	esthera -model bearings -filter ekf
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"esthera"
)

func main() {
	var (
		modelName  = flag.String("model", "arm", "model: arm, ungm, bearings, volatility")
		joints     = flag.Int("joints", 5, "arm joints (state dim = joints + 4)")
		filterName = flag.String("filter", "parallel", "filter: parallel, sequential, centralized, gaussian, ekf, ukf")
		subFilters = flag.Int("subfilters", 120, "sub-filter count N")
		mPer       = flag.Int("m", 128, "particles per sub-filter")
		scheme     = flag.String("scheme", "ring", "exchange scheme: ring, torus, all-to-all, hypercube, none")
		tCount     = flag.Int("t", 1, "particles exchanged per neighbor")
		resampler  = flag.String("resampler", "rws", "resampler: rws, vose (sequential also: systematic, stratified, multinomial, residual)")
		policy     = flag.String("policy", "always", "resampling policy: always, ess, random, never")
		estimator  = flag.String("estimator", "max-weight", "estimate operator: max-weight, weighted-mean")
		particles  = flag.Int("particles", 4096, "total particles (centralized/gaussian)")
		steps      = flag.Int("steps", 100, "filtering steps")
		seed       = flag.Uint64("seed", 1, "master seed")
		quiet      = flag.Bool("quiet", false, "suppress the per-step table")
	)
	flag.Parse()

	m, sc, err := makeScenario(*modelName, *joints, *seed)
	if err != nil {
		fatal(err)
	}
	cfg := esthera.Config{
		SubFilters:            *subFilters,
		ParticlesPerSubFilter: *mPer,
		ExchangeScheme:        *scheme,
		ExchangeCount:         *tCount,
		Resampler:             *resampler,
		Policy:                *policy,
		Estimator:             *estimator,
		Seed:                  *seed,
	}
	f, total, err := makeFilter(*filterName, m, cfg, *particles, *seed)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("model=%s state-dim=%d filter=%s particles=%d steps=%d seed=%d\n",
		m.Name(), m.StateDim(), f.Name(), total, *steps, *seed)
	start := time.Now()
	errs, err := esthera.Track(f, sc, *steps, *seed+1000)
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)

	if !*quiet {
		fmt.Println("step  error")
		for k, e := range errs {
			fmt.Printf("%4d  %.4f\n", k+1, e)
		}
	}
	mean, worst := 0.0, 0.0
	for _, e := range errs {
		mean += e
		if e > worst {
			worst = e
		}
	}
	mean /= float64(len(errs))
	fmt.Printf("mean error     %.4f\n", mean)
	fmt.Printf("worst error    %.4f\n", worst)
	fmt.Printf("update rate    %.1f Hz (%s per step on this host)\n",
		float64(*steps)/elapsed.Seconds(), elapsed/time.Duration(*steps))
}

func makeScenario(name string, joints int, seed uint64) (esthera.Model, esthera.Scenario, error) {
	switch name {
	case "arm":
		return esthera.NewArmScenario(joints)
	case "ungm":
		m, sc := esthera.NewUNGMScenario(seed)
		return m, sc, nil
	case "bearings":
		m, sc := esthera.NewBearingsScenario(seed)
		return m, sc, nil
	case "volatility":
		m, sc := esthera.NewVolatilityScenario(seed)
		return m, sc, nil
	}
	return nil, nil, fmt.Errorf("unknown model %q", name)
}

func makeFilter(name string, m esthera.Model, cfg esthera.Config, particles int, seed uint64) (esthera.Filter, int, error) {
	switch name {
	case "parallel":
		f, err := esthera.NewFilter(m, cfg)
		return f, cfg.SubFilters * cfg.ParticlesPerSubFilter, err
	case "sequential":
		f, err := esthera.NewSequentialFilter(m, cfg)
		return f, cfg.SubFilters * cfg.ParticlesPerSubFilter, err
	case "centralized":
		f, err := esthera.NewCentralizedFilter(m, particles, seed)
		return f, particles, err
	case "gaussian":
		f, err := esthera.NewGaussianFilter(m, particles, seed)
		return f, particles, err
	case "ekf", "ukf":
		lin, ok := m.(esthera.Linearizable)
		if !ok {
			return nil, 0, fmt.Errorf("model %s does not support Kalman baselines", m.Name())
		}
		if name == "ekf" {
			return esthera.NewEKF(lin, seed), 0, nil
		}
		return esthera.NewUKF(lin, seed), 0, nil
	}
	return nil, 0, fmt.Errorf("unknown filter %q", name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "esthera:", err)
	os.Exit(1)
}
