// Command esthera-swarm drives synthetic stepping load against an
// esthera-serve or esthera-router endpoint and judges the run: it
// creates -sessions tracking sessions, steps each in its own goroutine
// for -duration with the retrying client, and exits non-zero if any
// non-retryable error surfaced or the stepping p99 latency exceeded
// -p99-budget. The chaos harness (scripts/test_chaos_shards.sh) uses
// it to assert that killing a replica under a router costs retries,
// never correctness.
//
// Retryable backpressure (429/503 with Retry-After) is absorbed by the
// client's retry loop up to -attempts tries per step; only exhausted
// retries and hard replies count as failures. The summary is one JSON
// object on stdout.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"sync"
	"time"

	"esthera"
)

type summary struct {
	Sessions     int     `json:"sessions"`
	Steps        int64   `json:"steps"`
	Failures     int64   `json:"failures"`
	FirstFailure string  `json:"first_failure,omitempty"`
	P50MS        float64 `json:"p50_ms"`
	P99MS        float64 `json:"p99_ms"`
	MaxMS        float64 `json:"max_ms"`
	BudgetMS     float64 `json:"p99_budget_ms"`
	Pass         bool    `json:"pass"`
}

func main() {
	var (
		base     = flag.String("router", "http://127.0.0.1:8080", "endpoint base URL (router or single replica)")
		sessions = flag.Int("sessions", 8, "concurrent sessions")
		duration = flag.Duration("duration", 10*time.Second, "stepping duration")
		model    = flag.String("model", "ungm", "model registry name")
		attempts = flag.Int("attempts", 64, "max attempts per step (retryable 429/503 absorbed)")
		budget   = flag.Duration("p99-budget", 2*time.Second, "fail if stepping p99 exceeds this")
		ready    = flag.Duration("ready-timeout", 15*time.Second, "wait this long for /readyz before starting")
		seed     = flag.Int64("seed", 1, "observation stream seed")
	)
	flag.Parse()

	client := esthera.NewServerClient(esthera.ClientConfig{BaseURL: *base, MaxAttempts: *attempts})
	ctx, cancel := context.WithTimeout(context.Background(), *ready+*duration+2*time.Minute)
	defer cancel()

	if err := waitReady(ctx, client, *ready); err != nil {
		fmt.Fprintf(os.Stderr, "esthera-swarm: endpoint never became ready: %v\n", err)
		os.Exit(1)
	}

	ids := make([]string, *sessions)
	for i := range ids {
		id, err := client.Create(ctx, esthera.FilterSpec{Model: *model, Seed: uint64(*seed) + uint64(i)})
		if err != nil {
			fmt.Fprintf(os.Stderr, "esthera-swarm: create session %d: %v\n", i, err)
			os.Exit(1)
		}
		ids[i] = id
	}

	var (
		mu        sync.Mutex
		latencies []float64
		steps     int64
		failures  int64
		firstFail string
	)
	deadline := time.Now().Add(*duration)
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(i)))
			for time.Now().Before(deadline) && ctx.Err() == nil {
				z := []float64{rng.NormFloat64()}
				t0 := time.Now()
				_, err := client.Step(ctx, id, nil, z)
				lat := time.Since(t0)
				mu.Lock()
				if err != nil {
					failures++
					if firstFail == "" {
						firstFail = fmt.Sprintf("session %s: %v", id, err)
					}
					mu.Unlock()
					return
				}
				steps++
				latencies = append(latencies, float64(lat.Microseconds())/1000)
				mu.Unlock()
			}
		}(i, id)
	}
	wg.Wait()

	sum := summary{Sessions: *sessions, Steps: steps, Failures: failures, FirstFailure: firstFail, BudgetMS: float64(budget.Milliseconds())}
	if len(latencies) > 0 {
		sort.Float64s(latencies)
		sum.P50MS = latencies[len(latencies)/2]
		sum.P99MS = latencies[min(len(latencies)-1, len(latencies)*99/100)]
		sum.MaxMS = latencies[len(latencies)-1]
	}
	sum.Pass = failures == 0 && steps > 0 && sum.P99MS <= sum.BudgetMS
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	_ = enc.Encode(sum)
	if !sum.Pass {
		os.Exit(1)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// waitReady polls /readyz until it answers 200 or the wait expires.
func waitReady(ctx context.Context, c *esthera.Client, wait time.Duration) error {
	deadline := time.Now().Add(wait)
	var last error
	for time.Now().Before(deadline) && ctx.Err() == nil {
		if last = c.Ready(ctx); last == nil {
			return nil
		}
		time.Sleep(200 * time.Millisecond)
	}
	if last == nil {
		last = ctx.Err()
	}
	return last
}
