// Command esthera-serve runs the multi-session estimation service over
// HTTP: many concurrent tracking sessions — one distributed particle
// filter each — share one many-core device, with bounded admission,
// cross-session batched kernel launches, checkpoint/restore and a
// /metrics introspection endpoint.
//
// Examples:
//
//	esthera-serve                        # listen on :8080
//	esthera-serve -addr :9000 -workers 8
//	esthera-serve -queue 64 -batch 16 -sessions 128
//
// API (JSON over HTTP; see internal/serve):
//
//	POST   /v1/sessions                 {"spec": {"model": "ungm", ...}}
//	POST   /v1/sessions/{id}/step       {"u": [...], "z": [...]}
//	GET    /v1/sessions/{id}
//	GET    /v1/sessions/{id}/checkpoint
//	POST   /v1/restore
//	DELETE /v1/sessions/{id}
//	GET    /metrics                     JSON stats; Prometheus text with ?format=prometheus
//	GET    /trace                       drain recorded spans as Chrome trace JSON
//	POST   /trace                       {"enabled": bool} toggles span recording
//	GET    /healthz                     liveness (200 while the process is up)
//	GET    /readyz                      readiness (503 once draining or closed)
//
// -trace starts span recording at boot; -health-stride controls
// per-session filter-health sampling. -pprof-addr serves net/http/pprof
// on a separate address (off by default, never on the service port).
//
// -shard-addr additionally serves the binary shard transport there
// (see internal/shard): health pings plus checkpoint export/restore,
// which is what lets an esthera-router front this replica, fail over
// its sessions, and live-migrate them bit-exactly. -shard-name sets
// the replica's handshake name (default the listen address).
//
// On SIGINT/SIGTERM the server drains gracefully: it stops admitting
// new steps (readiness goes 503 so load balancers route around it),
// waits up to -drain-timeout for in-flight steps to deliver, then shuts
// the HTTP listener and the device down.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux, served only via -pprof-addr
	"os"
	"os/signal"
	"syscall"
	"time"

	"esthera"
	"esthera/internal/shard"
	"esthera/internal/telemetry"
	tlog "esthera/internal/telemetry/log"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		workers  = flag.Int("workers", 0, "device workers (0 = GOMAXPROCS)")
		sessions = flag.Int("sessions", 0, "max concurrent sessions (0 = 256)")
		queue    = flag.Int("queue", 0, "admission queue depth (0 = 128)")
		batch    = flag.Int("batch", 0, "max steps coalesced per launch (0 = 32)")
		window   = flag.Duration("window", 0, "batching window (0 = 200µs)")
		retry    = flag.Duration("retry", 0, "retry-after hint before batch latency is measured (0 = 5ms)")
		drain    = flag.Duration("drain-timeout", 10*time.Second, "max wait for in-flight steps on shutdown")
		trace    = flag.Bool("trace", false, "start with span recording enabled (toggle at runtime via POST /trace)")
		stride   = flag.Int("health-stride", 0, "sample filter health every k rounds (0 = every round, <0 = off)")
		pprof    = flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty = disabled)")
		shAddr   = flag.String("shard-addr", "", "serve the shard transport (pings, checkpoint transfer) on this address (empty = disabled)")
		shName   = flag.String("shard-name", "", "replica name in shard transport handshakes (empty = -shard-addr)")
		logLevel = flag.String("log-level", "info", "structured log level: debug, info, warn, error, off (runtime via POST /logz)")
		version  = flag.Bool("version", false, "print the build string and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println(telemetry.BuildString())
		return
	}
	lv, err := tlog.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "esthera-serve:", err)
		os.Exit(2)
	}
	name := *shName
	if name == "" {
		name = *addr
	}

	s := esthera.NewServer(esthera.ServerConfig{
		Workers:      *workers,
		MaxSessions:  *sessions,
		QueueDepth:   *queue,
		MaxBatch:     *batch,
		BatchWindow:  *window,
		RetryAfter:   *retry,
		Trace:        *trace,
		HealthStride: *stride,
		Name:         name,
		LogLevel:     lv,
		LogSink:      os.Stderr,
	})
	defer s.Shutdown()

	if *pprof != "" {
		// pprof gets its own listener and mux so profiling endpoints are
		// never exposed on the service address. http.DefaultServeMux
		// carries the net/http/pprof registrations from the import above.
		go func() {
			fmt.Fprintf(os.Stderr, "esthera-serve pprof listening on %s\n", *pprof)
			srv := &http.Server{Addr: *pprof, Handler: http.DefaultServeMux, ReadHeaderTimeout: 5 * time.Second}
			if err := srv.ListenAndServe(); err != nil {
				fmt.Fprintf(os.Stderr, "esthera-serve pprof: %v\n", err)
			}
		}()
	}

	if *shAddr != "" {
		name := *shName
		if name == "" {
			name = *shAddr
		}
		tl := shard.NewListener(name, shard.NewAgent(name, s))
		if err := tl.ListenAndServe(*shAddr); err != nil {
			fmt.Fprintf(os.Stderr, "esthera-serve shard transport: %v\n", err)
			os.Exit(1)
		}
		defer tl.Close()
		fmt.Fprintf(os.Stderr, "esthera-serve shard transport %q listening on %s\n", name, tl.Addr())
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           esthera.NewServerHandler(s),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "%s listening on %s\n", telemetry.BuildString(), *addr)

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Graceful drain: stop admitting steps first (readiness flips to 503,
	// new steps fail fast with ErrDraining), let in-flight batches finish
	// and deliver, then close the listener and stop the device.
	fmt.Fprintf(os.Stderr, "esthera-serve draining (timeout %v)\n", *drain)
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), *drain)
	if err := s.Drain(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "esthera-serve drain incomplete: %v\n", err)
	}
	cancelDrain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = srv.Shutdown(shutdownCtx)
}
