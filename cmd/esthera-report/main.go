// Command esthera-report regenerates the complete evaluation in one run:
// every figure and table of the paper plus the toolkit's ablations, each
// written as aligned text and CSV into a report directory. It is the
// "reproduce everything" entry point referenced by EXPERIMENTS.md.
//
// Example:
//
//	esthera-report -out report/ -runs 8 -steps 60
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"esthera/internal/experiments"
)

func main() {
	var (
		out     = flag.String("out", "report", "output directory")
		runs    = flag.Int("runs", 6, "runs per accuracy configuration (paper: 100)")
		steps   = flag.Int("steps", 50, "steps per run (paper: 100)")
		seed    = flag.Uint64("seed", 0xE57, "master seed")
		full    = flag.Bool("full", false, "paper-scale performance sweeps (slow)")
		workers = flag.Int("workers", 0, "host device workers")
	)
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	perf := experiments.PerfOptions{Workers: *workers}
	if !*full {
		perf.Totals = []int{1 << 10, 1 << 13, 1 << 16, 1 << 18}
	}
	acc := experiments.AccuracyOptions{Steps: *steps, Runs: *runs, Seed: *seed, Workers: *workers}

	type job struct {
		name string
		run  func() ([]*experiments.Table, error)
	}
	one := func(f func() (*experiments.Table, error)) func() ([]*experiments.Table, error) {
		return func() ([]*experiments.Table, error) {
			t, err := f()
			if err != nil {
				return nil, err
			}
			return []*experiments.Table{t}, nil
		}
	}
	jobs := []job{
		{"fig3-update-rate", one(func() (*experiments.Table, error) { return experiments.Fig3UpdateRate(perf) })},
		{"fig4a-subfilter-size", one(func() (*experiments.Table, error) { return experiments.Fig4aParticlesPerSubFilter(perf, nil) })},
		{"fig4b-subfilter-count", one(func() (*experiments.Table, error) { return experiments.Fig4bSubFilters(perf, nil) })},
		{"fig4c-state-dims", one(func() (*experiments.Table, error) { return experiments.Fig4cStateDims(perf, nil) })},
		{"fig4-cpu-breakdown", one(func() (*experiments.Table, error) { return experiments.Fig4CPUBreakdown(perf, nil) })},
		{"fig5-resampling", one(func() (*experiments.Table, error) { return experiments.Fig5Resampling(perf) })},
		{"fig6-exchange-schemes", func() ([]*experiments.Table, error) { return experiments.Fig6ExchangeSchemes(acc) }},
		{"fig7-exchange-count", one(func() (*experiments.Table, error) { return experiments.Fig7ExchangeCount(acc) })},
		{"fig8-trajectory", one(func() (*experiments.Table, error) {
			res, err := experiments.Fig8Trajectory(acc, 0)
			if err != nil {
				return nil, err
			}
			return res.Table, nil
		})},
		{"fig9-distributed-overhead", one(func() (*experiments.Table, error) { return experiments.Fig9DistributedOverhead(acc, nil, nil) })},
		{"ablation-policy", one(func() (*experiments.Table, error) { return experiments.PolicyAblation(acc) })},
		{"ablation-variants", one(func() (*experiments.Table, error) { return experiments.VariantsAblation(acc) })},
		{"ablation-estimator", one(func() (*experiments.Table, error) { return experiments.EstimatorAblation(acc) })},
		{"ablation-diversity", one(func() (*experiments.Table, error) { return experiments.DiversityAblation(acc) })},
		{"ablation-precision", one(func() (*experiments.Table, error) { return experiments.PrecisionAblation(acc) })},
		{"ablation-embedded", one(func() (*experiments.Table, error) { return experiments.EmbeddedScaleDown(acc) })},
		{"ablation-closedloop", one(func() (*experiments.Table, error) { return experiments.ClosedLoopAblation(acc) })},
		{"cluster-scaling", one(func() (*experiments.Table, error) { return experiments.ClusterScaling(acc, nil) })},
		{"cluster-failure", one(func() (*experiments.Table, error) { return experiments.ClusterFailure(acc) })},
	}

	summary := &strings.Builder{}
	fmt.Fprintf(summary, "esthera evaluation report — %s\n", time.Now().Format(time.RFC3339))
	fmt.Fprintf(summary, "runs=%d steps=%d seed=%#x full=%v\n\n", *runs, *steps, *seed, *full)

	for _, j := range jobs {
		start := time.Now()
		tables, err := j.run()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", j.name, err))
		}
		for i, t := range tables {
			base := j.name
			if len(tables) > 1 {
				base = fmt.Sprintf("%s-%d", j.name, i+1)
			}
			txt, err := os.Create(filepath.Join(*out, base+".txt"))
			if err != nil {
				fatal(err)
			}
			t.Fprint(txt)
			txt.Close()
			csvf, err := os.Create(filepath.Join(*out, base+".csv"))
			if err != nil {
				fatal(err)
			}
			if err := t.WriteCSV(csvf); err != nil {
				fatal(err)
			}
			csvf.Close()
			t.Fprint(summary)
		}
		fmt.Printf("%-28s %8s\n", j.name, time.Since(start).Round(time.Millisecond))
	}
	if err := os.WriteFile(filepath.Join(*out, "REPORT.txt"), []byte(summary.String()), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("report written to %s (%d artifacts + REPORT.txt)\n", *out, 2*len(jobs))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "esthera-report:", err)
	os.Exit(1)
}
