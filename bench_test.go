package esthera_test

// One benchmark per evaluation artifact of the paper. The benches time
// real filtering rounds on this host and attach the figure's own metric
// (update rate in Hz, or mean tracking error in meters) as custom
// benchmark metrics, so `go test -bench=.` regenerates the measured side
// of every table and figure. The cross-platform predictions and the full
// row/series printouts come from cmd/esthera-bench and
// cmd/esthera-accuracy (see EXPERIMENTS.md).

import (
	"errors"
	"math"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"esthera"
	"esthera/internal/device"
	"esthera/internal/exchange"
	"esthera/internal/filter"
	"esthera/internal/kernels"
	"esthera/internal/model"
	"esthera/internal/model/arm"
	"esthera/internal/resample"
	"esthera/internal/rng"
	"esthera/internal/telemetry"
)

// benchScenario sets up the arm benchmark and measurement plumbing.
type benchScenario struct {
	m     model.Model
	sc    model.Scenario
	truth []float64
	z     []float64
	u     []float64
	measR *rng.Rand
	k     int
}

func newBenchScenario(b *testing.B, joints int) *benchScenario {
	b.Helper()
	m, sc, err := arm.NewScenario(arm.Config{Joints: joints}, arm.DefaultLemniscate())
	if err != nil {
		b.Fatal(err)
	}
	return &benchScenario{
		m: m, sc: sc,
		truth: make([]float64, m.StateDim()),
		z:     make([]float64, m.MeasurementDim()),
		u:     make([]float64, m.ControlDim()),
		measR: rng.New(rng.NewPhiloxStream(7, 0x4D53)),
	}
}

// step advances ground truth one step and returns (u, z).
func (s *benchScenario) step() ([]float64, []float64) {
	s.k++
	s.sc.TrueState(s.k, s.truth)
	s.sc.Control(s.k, s.u)
	s.m.Measure(s.z, s.truth, s.measR)
	return s.u, s.z
}

// trackedError returns the position error of an estimate vs current truth.
func (s *benchScenario) trackedError(est filter.Estimate) float64 {
	ex, ey := s.m.TrackedPosition(est.State)
	tx, ty := s.m.TrackedPosition(s.truth)
	dx, dy := ex-tx, ey-ty
	return dx*dx + dy*dy // squared; sqrt applied by caller on the mean
}

// benchParallelArm times full filtering rounds for a given shape and
// reports Hz and particles/sec.
func benchParallelArm(b *testing.B, subFilters, particlesPer, joints int) {
	b.Helper()
	s := newBenchScenario(b, joints)
	dev := device.New(device.Config{LocalMemBytes: -1})
	f, err := filter.NewParallel(dev, s.m, filter.ParallelConfig{
		SubFilters:    subFilters,
		ParticlesPer:  particlesPer,
		Scheme:        exchange.Ring,
		ExchangeCount: 1,
	}, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u, z := s.step()
		f.Step(u, z)
	}
	b.StopTimer()
	sec := b.Elapsed().Seconds()
	if sec > 0 {
		b.ReportMetric(float64(b.N)/sec, "Hz")
		b.ReportMetric(float64(b.N)*float64(subFilters*particlesPer)/sec, "particles/s")
	}
}

// BenchmarkFig3UpdateRate regenerates the measured (host) side of Fig. 3:
// achieved update rate vs total particle count at m=128.
func BenchmarkFig3UpdateRate(b *testing.B) {
	for _, total := range []int{1 << 10, 1 << 14, 1 << 17, 1 << 20} {
		n := total / 128
		if n < 1 {
			n = 1
		}
		b.Run(byteSize(total), func(b *testing.B) {
			benchParallelArm(b, n, 128, 5)
		})
	}
}

// BenchmarkFig4aParticlesPerSubFilter scales the sub-filter size
// (Fig. 4a; per-kernel fractions via cmd/esthera-bench -fig 4a).
func BenchmarkFig4aParticlesPerSubFilter(b *testing.B) {
	for _, m := range []int{32, 128, 512} {
		b.Run(byteSize(m), func(b *testing.B) {
			benchParallelArm(b, 256, m, 5)
		})
	}
}

// BenchmarkFig4bSubFilters scales the network size (Fig. 4b).
func BenchmarkFig4bSubFilters(b *testing.B) {
	for _, n := range []int{64, 512, 2048} {
		b.Run(byteSize(n), func(b *testing.B) {
			benchParallelArm(b, n, 128, 5)
		})
	}
}

// BenchmarkFig4cStateDims scales the state dimension via the arm's joint
// count (Fig. 4c).
func BenchmarkFig4cStateDims(b *testing.B) {
	for _, dims := range []int{8, 16, 32} {
		b.Run(byteSize(dims), func(b *testing.B) {
			benchParallelArm(b, 256, 128, dims-4)
		})
	}
}

// BenchmarkFig5Resampling regenerates the measured side of Fig. 5: RWS vs
// Vose, sequential-centralized vs parallel sub-filter kernels.
func BenchmarkFig5Resampling(b *testing.B) {
	const n = 1 << 18
	weights := make([]float64, n)
	r := rng.New(rng.NewPhilox(1))
	for i := range weights {
		weights[i] = r.Float64()
	}
	dst := make([]int, n)
	for _, rs := range []resample.Resampler{resample.RWS{}, resample.Vose{}} {
		b.Run("sequential-"+rs.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rs.Resample(dst, weights, r)
			}
		})
	}
	for _, algo := range []kernels.Algo{kernels.AlgoRWS, kernels.AlgoVose} {
		b.Run("kernel-"+algo.String(), func(b *testing.B) {
			m, _, err := arm.NewScenario(arm.Config{}, arm.DefaultLemniscate())
			if err != nil {
				b.Fatal(err)
			}
			dev := device.New(device.Config{LocalMemBytes: -1})
			top, _ := exchange.NewTopology(exchange.None, n/128)
			pipe, err := kernels.New(dev, m, kernels.Config{
				SubFilters: n / 128, ParticlesPer: 128, Topology: top, Resampler: algo,
			}, 1)
			if err != nil {
				b.Fatal(err)
			}
			lw := pipe.LogWeights()
			for i := range lw {
				lw[i] = r.Float64() * 4
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pipe.KernelResample()
			}
		})
	}
}

// benchAccuracy times filtering rounds and reports the figure's metric —
// the mean tracked-position error — alongside.
func benchAccuracy(b *testing.B, mk func() (filter.Filter, error)) {
	b.Helper()
	s := newBenchScenario(b, 5)
	f, err := mk()
	if err != nil {
		b.Fatal(err)
	}
	sumSq := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u, z := s.step()
		est := f.Step(u, z)
		sumSq += s.trackedError(est)
	}
	b.StopTimer()
	if b.N > 0 {
		b.ReportMetric(math.Sqrt(sumSq/float64(b.N)), "rmse_m")
	}
}

// BenchmarkFig6ExchangeSchemes regenerates Fig. 6's configurations
// (error metric attached as rmse_m; full sweep via esthera-accuracy).
func BenchmarkFig6ExchangeSchemes(b *testing.B) {
	for _, scheme := range []exchange.Scheme{exchange.AllToAll, exchange.Ring, exchange.Torus2D} {
		sch := scheme
		b.Run(scheme.String(), func(b *testing.B) {
			benchAccuracy(b, func() (filter.Filter, error) {
				dev := device.New(device.Config{LocalMemBytes: -1})
				m, _, err := arm.NewScenario(arm.Config{}, arm.DefaultLemniscate())
				if err != nil {
					return nil, err
				}
				return filter.NewParallel(dev, m, filter.ParallelConfig{
					SubFilters: 64, ParticlesPer: 16, Scheme: sch, ExchangeCount: 1,
				}, 1)
			})
		})
	}
}

// BenchmarkFig7ExchangeCount regenerates Fig. 7's configurations.
func BenchmarkFig7ExchangeCount(b *testing.B) {
	for _, t := range []int{0, 1, 4} {
		tc := t
		b.Run(byteSize(t), func(b *testing.B) {
			benchAccuracy(b, func() (filter.Filter, error) {
				dev := device.New(device.Config{LocalMemBytes: -1})
				m, _, err := arm.NewScenario(arm.Config{}, arm.DefaultLemniscate())
				if err != nil {
					return nil, err
				}
				return filter.NewParallel(dev, m, filter.ParallelConfig{
					SubFilters: 64, ParticlesPer: 16, Scheme: exchange.Ring, ExchangeCount: tc,
				}, 1)
			})
		})
	}
}

// BenchmarkFig8Trajectory times the Fig. 8 high-particle configuration.
func BenchmarkFig8Trajectory(b *testing.B) {
	benchAccuracy(b, func() (filter.Filter, error) {
		dev := device.New(device.Config{LocalMemBytes: -1})
		m, _, err := arm.NewScenario(arm.Config{}, arm.DefaultLemniscate())
		if err != nil {
			return nil, err
		}
		return filter.NewParallel(dev, m, filter.ParallelConfig{
			SubFilters: 64, ParticlesPer: 64, Scheme: exchange.Ring, ExchangeCount: 1,
		}, 1)
	})
}

// BenchmarkFig9DistributedVsCentralized regenerates Fig. 9's comparison
// at 4096 total particles.
func BenchmarkFig9DistributedVsCentralized(b *testing.B) {
	m, _, err := arm.NewScenario(arm.Config{}, arm.DefaultLemniscate())
	if err != nil {
		b.Fatal(err)
	}
	b.Run("centralized", func(b *testing.B) {
		benchAccuracy(b, func() (filter.Filter, error) {
			return filter.NewCentralized(m, 4096, 1, filter.CentralizedOptions{})
		})
	})
	for _, mp := range []int{16, 64} {
		size := mp
		b.Run("distributed-m"+byteSize(mp), func(b *testing.B) {
			benchAccuracy(b, func() (filter.Filter, error) {
				dev := device.New(device.Config{LocalMemBytes: -1})
				return filter.NewParallel(dev, m, filter.ParallelConfig{
					SubFilters: 4096 / size, ParticlesPer: size,
					Scheme: exchange.Ring, ExchangeCount: 1,
				}, 1)
			})
		})
	}
}

// BenchmarkTableIIDefaults times the full paper-default configuration
// (Table II: 120 sub-filters × 128 particles, 5-joint arm, ring t=1).
func BenchmarkTableIIDefaults(b *testing.B) {
	s := newBenchScenario(b, 5)
	f, err := esthera.NewFilter(s.m, esthera.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u, z := s.step()
		f.Step(u, z)
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(b.N)/sec, "Hz")
	}
}

// benchRoundPath times full filtering rounds through either the unfused
// kernel-per-launch path (Pipeline.Round) or the fused path
// (Pipeline.RoundFused) at the paper's default 128-lane work-groups. The
// two are bit-identical (see internal/kernels golden-trace tests); the
// ratio between them is pure launch/synchronization overhead, the cost
// this PR's persistent pool + kernel fusion attack. UNGM keeps per-lane
// model work small so the sub-filter kernels stay in the
// launch-overhead-dominated regime of Fig. 4a's left edge.
func benchRoundPath(b *testing.B, fused, traced bool, subFilters, particlesPer int, algo kernels.Algo) {
	b.Helper()
	m := model.NewUNGM()
	dev := device.New(device.Config{LocalMemBytes: -1})
	defer dev.Close()
	top, err := exchange.NewTopology(exchange.Ring, subFilters)
	if err != nil {
		b.Fatal(err)
	}
	pipe, err := kernels.New(dev, m, kernels.Config{
		SubFilters:    subFilters,
		ParticlesPer:  particlesPer,
		ExchangeCount: 1,
		Topology:      top,
		Resampler:     algo,
	}, 1)
	if err != nil {
		b.Fatal(err)
	}
	if traced {
		tr := telemetry.New(telemetry.Config{})
		tr.SetEnabled(true)
		dev.SetTracer(tr)
		pipe.SetTracer(tr)
		pipe.SetHealthEvery(1)
	}
	z := make([]float64, m.MeasurementDim())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z[0] = 10 * math.Sin(float64(i)*0.3)
		if fused {
			pipe.RoundFused(nil, z, i+1)
		} else {
			pipe.Round(nil, z, i+1)
		}
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(b.N)*float64(subFilters*particlesPer)/sec, "particles/s")
	}
}

// BenchmarkRound is the unfused baseline: six kernels, six launches.
func BenchmarkRound(b *testing.B) {
	for _, n := range []int{64, 256} {
		b.Run("n="+strconv.Itoa(n)+"/m=128", func(b *testing.B) {
			benchRoundPath(b, false, false, n, 128, kernels.AlgoRWS)
		})
	}
}

// BenchmarkRoundFused fuses rand+sampling+local sort into one launch.
// BENCH_2.json records the pair; the fused/unfused ratio is this PR's
// headline number. Telemetry stays detached here — this is the number
// scripts/bench_guard.sh holds the hot path to.
func BenchmarkRoundFused(b *testing.B) {
	for _, n := range []int{64, 256} {
		b.Run("n="+strconv.Itoa(n)+"/m=128", func(b *testing.B) {
			benchRoundPath(b, true, false, n, 128, kernels.AlgoRWS)
		})
	}
	// Metropolis series: the collective-free resampler replaces the
	// bitonic sort + prefix-sum scan with per-lane biased random walks
	// (top-t selection only). Same zero-allocation contract —
	// scripts/bench_guard.sh ratchets this series too.
	for _, n := range []int{64, 256} {
		b.Run("n="+strconv.Itoa(n)+"/m=128/metropolis", func(b *testing.B) {
			benchRoundPath(b, true, false, n, 128, kernels.AlgoMetropolis)
		})
	}
}

// BenchmarkRoundFusedTraced is the fused round with full observability
// on: span recording for every launch and round, filter health sampled
// every round. The delta vs BenchmarkRoundFused is the enabled-telemetry
// overhead; DESIGN.md §9 records the measured budget.
func BenchmarkRoundFusedTraced(b *testing.B) {
	for _, n := range []int{64, 256} {
		b.Run("n="+strconv.Itoa(n)+"/m=128", func(b *testing.B) {
			benchRoundPath(b, true, true, n, 128, kernels.AlgoRWS)
		})
	}
}

// BenchmarkRoundBatch is the serve-path variant: B concurrent sessions'
// rounds executed either as B independent unfused rounds (what serving
// cost before cross-session batching) or as one fused batched round
// (kernels.RoundBatch, what the serve scheduler issues).
func BenchmarkRoundBatch(b *testing.B) {
	const sessions, subFilters, particlesPer = 8, 16, 128
	mk := func(b *testing.B, dev *device.Device) []*kernels.Pipeline {
		b.Helper()
		ps := make([]*kernels.Pipeline, sessions)
		for i := range ps {
			top, err := exchange.NewTopology(exchange.Ring, subFilters)
			if err != nil {
				b.Fatal(err)
			}
			ps[i], err = kernels.New(dev, model.NewUNGM(), kernels.Config{
				SubFilters:    subFilters,
				ParticlesPer:  particlesPer,
				ExchangeCount: 1,
				Topology:      top,
			}, uint64(i+1))
			if err != nil {
				b.Fatal(err)
			}
		}
		return ps
	}
	report := func(b *testing.B) {
		if sec := b.Elapsed().Seconds(); sec > 0 {
			b.ReportMetric(float64(b.N)*float64(sessions*subFilters*particlesPer)/sec, "particles/s")
		}
	}
	b.Run("sequential-unfused", func(b *testing.B) {
		dev := device.New(device.Config{LocalMemBytes: -1})
		defer dev.Close()
		ps := mk(b, dev)
		z := []float64{0}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			z[0] = 10 * math.Sin(float64(i)*0.3)
			for _, p := range ps {
				p.Round(nil, z, i+1)
			}
		}
		b.StopTimer()
		report(b)
	})
	b.Run("batched-fused", func(b *testing.B) {
		dev := device.New(device.Config{LocalMemBytes: -1})
		defer dev.Close()
		ps := mk(b, dev)
		// A persistent Batcher with reused entries is how a long-lived
		// scheduler drives this path; the steady-state round is
		// allocation-free (pinned by TestRoundBatchSteadyStateAllocs).
		batcher := kernels.NewBatcher(dev)
		batch := make([]*kernels.BatchRound, sessions)
		for j, p := range ps {
			batch[j] = &kernels.BatchRound{P: p}
		}
		z := []float64{0}
		step := func(i int) {
			z[0] = 10 * math.Sin(float64(i)*0.3)
			for _, e := range batch {
				e.Z = z
				e.K = i + 1
			}
			if err := batcher.Round(batch); err != nil {
				b.Fatal(err)
			}
		}
		// One warmup round grows the batcher's tables to steady state,
		// so the measured loop reflects the long-lived scheduler.
		step(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			step(i + 1)
		}
		b.StopTimer()
		report(b)
	})
}

func byteSize(n int) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return strconv.Itoa(n>>20) + "M"
	case n >= 1<<10 && n%(1<<10) == 0:
		return strconv.Itoa(n>>10) + "K"
	}
	return strconv.Itoa(n)
}

// BenchmarkServeSessions measures the serving layer's aggregate step
// throughput at increasing tenancy: the same total number of observation
// steps pushed through 1, 8 and 64 concurrent sessions on one shared
// device. Rising aggregate Hz with session count is the cross-session
// batching at work (more pending steps per scheduling round → larger
// merged grids → better device utilization).
func BenchmarkServeSessions(b *testing.B) {
	for _, sessions := range []int{1, 8, 64} {
		b.Run("sessions="+strconv.Itoa(sessions), func(b *testing.B) {
			s := esthera.NewServer(esthera.ServerConfig{})
			defer s.Shutdown()
			ids := make([]string, sessions)
			for i := range ids {
				var err error
				ids[i], err = s.Create(esthera.FilterSpec{
					Model: "ungm", SubFilters: 16, ParticlesPer: 64, Seed: uint64(i + 1),
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			var next atomic.Int64
			b.ResetTimer()
			var wg sync.WaitGroup
			for i := range ids {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					for k := 1; next.Add(1) <= int64(b.N); k++ {
						z := []float64{10 * math.Sin(float64(k)*0.3+float64(i))}
						for {
							_, err := s.Step(ids[i], nil, z)
							if err == nil {
								break
							}
							var sat *esthera.SaturatedError
							if !errors.As(err, &sat) {
								b.Error(err)
								return
							}
							time.Sleep(sat.RetryAfter)
						}
					}
				}(i)
			}
			wg.Wait()
			b.StopTimer()
			if sec := b.Elapsed().Seconds(); sec > 0 {
				b.ReportMetric(float64(b.N)/sec, "steps/s")
			}
		})
	}
}
