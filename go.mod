module esthera

go 1.22
