package esthera

import (
	"fmt"

	"esthera/internal/cluster"
	"esthera/internal/control"
	"esthera/internal/device"
	"esthera/internal/exchange"
	"esthera/internal/filter"
	"esthera/internal/kernels"
	"esthera/internal/metrics"
	"esthera/internal/model"
	"esthera/internal/model/arm"
	"esthera/internal/resample"
)

// Core interfaces, re-exported so user code needs only this package.
type (
	// Model is a dynamical system a filter can estimate; see the
	// interface documentation in internal/model.
	Model = model.Model
	// Linearizable additionally exposes Jacobians and noise covariances
	// for the Kalman baselines.
	Linearizable = model.Linearizable
	// Scenario couples a model with ground truth and controls for
	// benchmarking.
	Scenario = model.Scenario
	// Filter is a recursive state estimator.
	Filter = filter.Filter
	// Estimate is one filtering step's output.
	Estimate = filter.Estimate
)

// Config collects the distributed-filter parameters of the paper's
// Table I plus the algorithmic choices of §IV, in a flag-friendly form.
type Config struct {
	// SubFilters is the network size N.
	SubFilters int
	// ParticlesPerSubFilter is the sub-filter size m.
	ParticlesPerSubFilter int
	// ExchangeScheme is "ring" (default), "torus", "all-to-all",
	// "hypercube" or "none".
	ExchangeScheme string
	// ExchangeCount is t, the particles sent per neighbor pair.
	ExchangeCount int
	// Resampler is "rws" (default), "vose", "systematic" or
	// "metropolis".
	Resampler string
	// Policy is "always" (default), "never", "ess" / "ess:<frac>" or
	// "random" / "random:<p>".
	Policy string
	// Streams selects the per-sub-filter PRNG: "philox" (default) or
	// "mtgp".
	Streams string
	// Estimator is "max-weight" (default, the paper's operator) or
	// "weighted-mean".
	Estimator string
	// Seed derives every random stream; equal seeds reproduce runs
	// exactly.
	Seed uint64
	// Workers sizes the host device (0 = GOMAXPROCS).
	Workers int
	// AdaptEvery enables the ESS-driven adaptive allocator in the
	// parallel filter: every AdaptEvery rounds the per-sub-filter
	// particle windows are re-divided toward the degenerating
	// sub-filters (gain and clamps default per filter.AdaptConfig).
	// 0, the default, keeps fixed uniform windows. Only NewFilter
	// honors it; the sequential and centralized builders reject
	// non-zero values.
	AdaptEvery int
}

// DefaultConfig returns the paper's Table II defaults for GPU-class
// hardware: 128 particles per sub-filter, 120 sub-filters, ring exchange
// of one particle per neighbor.
func DefaultConfig() Config {
	return Config{
		SubFilters:            120,
		ParticlesPerSubFilter: 128,
		ExchangeScheme:        "ring",
		ExchangeCount:         1,
		Resampler:             "rws",
		Policy:                "always",
		Seed:                  1,
	}
}

// Validate checks every name-typed field of the configuration against
// its registry — ExchangeScheme, Resampler, Policy, Streams and
// Estimator — and returns a descriptive error naming the offending value
// on the first mismatch. Zero values are valid (they select defaults).
// NewFilter validates implicitly; call Validate directly to check
// user-supplied configuration (flags, request bodies) before building
// anything.
func (cfg Config) Validate() error {
	if _, err := exchange.SchemeByName(orDefault(cfg.ExchangeScheme, "ring")); err != nil {
		return err
	}
	if _, err := kernels.AlgoByName(cfg.Resampler); err != nil {
		return err
	}
	if _, err := resample.PolicyByName(cfg.Policy); err != nil {
		return err
	}
	if _, err := filter.EstimatorByName(cfg.Estimator); err != nil {
		return err
	}
	switch cfg.Streams {
	case "", "philox", "mtgp":
	default:
		return fmt.Errorf("esthera: unknown streams %q (philox, mtgp)", cfg.Streams)
	}
	if cfg.AdaptEvery < 0 {
		return fmt.Errorf("esthera: AdaptEvery must be >= 0, got %d", cfg.AdaptEvery)
	}
	return nil
}

// NewFilter builds the paper's distributed particle filter over the
// many-core device substrate for the given model and configuration.
func NewFilter(m Model, cfg Config) (Filter, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	scheme, err := exchange.SchemeByName(orDefault(cfg.ExchangeScheme, "ring"))
	if err != nil {
		return nil, err
	}
	algo, err := kernels.AlgoByName(cfg.Resampler)
	if err != nil {
		return nil, err
	}
	policy, err := resample.PolicyByName(cfg.Policy)
	if err != nil {
		return nil, err
	}
	est, err := filter.EstimatorByName(cfg.Estimator)
	if err != nil {
		return nil, err
	}
	dev := device.New(device.Config{Workers: cfg.Workers, LocalMemBytes: -1})
	return filter.NewParallel(dev, m, filter.ParallelConfig{
		SubFilters:    cfg.SubFilters,
		ParticlesPer:  cfg.ParticlesPerSubFilter,
		Scheme:        scheme,
		ExchangeCount: cfg.ExchangeCount,
		Resampler:     algo,
		Policy:        policy,
		Streams:       cfg.Streams,
		Estimator:     est,
		Adapt:         filter.AdaptConfig{Every: cfg.AdaptEvery},
	}, cfg.Seed)
}

// NewSequentialFilter builds the sequential reference implementation of
// the same distributed algorithm (useful for validation and platforms
// where goroutine parallelism is undesirable).
func NewSequentialFilter(m Model, cfg Config) (Filter, error) {
	if cfg.AdaptEvery != 0 {
		return nil, fmt.Errorf("esthera: AdaptEvery requires the parallel filter (NewFilter)")
	}
	scheme, err := exchange.SchemeByName(orDefault(cfg.ExchangeScheme, "ring"))
	if err != nil {
		return nil, err
	}
	rs, err := resample.ByName(orDefault(cfg.Resampler, "rws"))
	if err != nil {
		return nil, err
	}
	policy, err := resample.PolicyByName(cfg.Policy)
	if err != nil {
		return nil, err
	}
	est, err := filter.EstimatorByName(cfg.Estimator)
	if err != nil {
		return nil, err
	}
	return filter.NewDistributed(m, filter.DistributedConfig{
		SubFilters:    cfg.SubFilters,
		ParticlesPer:  cfg.ParticlesPerSubFilter,
		Scheme:        scheme,
		ExchangeCount: cfg.ExchangeCount,
		Resampler:     rs,
		Policy:        policy,
		Estimator:     est,
	}, cfg.Seed)
}

// NewCentralizedFilter builds the classic sequential particle filter
// (Algorithm 1) with n particles and the paper's max-weight estimate.
func NewCentralizedFilter(m Model, n int, seed uint64) (Filter, error) {
	return filter.NewCentralized(m, n, seed, filter.CentralizedOptions{})
}

// NewCentralizedFilterWithEstimator is NewCentralizedFilter with an
// explicit estimate operator: "max-weight" (the paper's choice, best for
// sharp or multimodal posteriors) or "weighted-mean" (the MMSE estimate,
// better for smooth unimodal posteriors such as stochastic volatility).
func NewCentralizedFilterWithEstimator(m Model, n int, seed uint64, estimator string) (Filter, error) {
	est, err := filter.EstimatorByName(estimator)
	if err != nil {
		return nil, err
	}
	return filter.NewCentralized(m, n, seed, filter.CentralizedOptions{Estimator: est})
}

// NewGaussianFilter builds the Gaussian particle filter baseline.
func NewGaussianFilter(m Model, n int, seed uint64) (Filter, error) {
	return filter.NewGaussian(m, n, seed)
}

// NewAuxiliaryFilter builds the auxiliary particle filter (Pitt &
// Shephard) with n particles. The model must expose its deterministic
// one-step prediction (all bundled Linearizable models do); APF's
// look-ahead selection makes it markedly more particle-efficient on
// peaky likelihoods.
func NewAuxiliaryFilter(m Model, n int, seed uint64) (Filter, error) {
	return filter.NewAPF(m, n, seed, filter.MaxWeight)
}

// NewEKF builds the extended Kalman filter baseline. The model must be
// Linearizable.
func NewEKF(m Linearizable, seed uint64) Filter { return filter.NewEKF(m, seed) }

// NewUKF builds the unscented Kalman filter baseline.
func NewUKF(m Linearizable, seed uint64) Filter { return filter.NewUKF(m, seed) }

// NewArmScenario returns the paper's robotic-arm benchmark (§VII-A) with
// the given joint count (Table II default: 5, state dimension 9) and the
// lemniscate ground-truth path of Fig. 8.
func NewArmScenario(joints int) (Model, Scenario, error) {
	m, sc, err := arm.NewScenario(arm.Config{Joints: joints}, arm.DefaultLemniscate())
	if err != nil {
		return nil, nil, err
	}
	return m, sc, nil
}

// NewUNGMScenario returns the univariate nonstationary growth model with
// a simulated ground truth.
func NewUNGMScenario(seed uint64) (Model, Scenario) {
	m := model.NewUNGM()
	return m, model.NewSimulated(m, seed)
}

// NewBearingsScenario returns the four-state bearings-only tracking model
// with a simulated ground truth.
func NewBearingsScenario(seed uint64) (Model, Scenario) {
	m := model.NewBearings()
	return m, model.NewSimulated(m, seed)
}

// NewVolatilityScenario returns the stochastic-volatility model with a
// simulated ground truth.
func NewVolatilityScenario(seed uint64) (Model, Scenario) {
	m := model.NewStochasticVolatility()
	return m, model.NewSimulated(m, seed)
}

// NewVehicleScenario returns the four-state vehicle localization and
// map-matching model (a synthetic Manhattan road grid) with a scripted
// staircase route as ground truth. mapMatching enables the on-road soft
// constraint in the likelihood.
func NewVehicleScenario(mapMatching bool) (Model, Scenario) {
	m := model.NewVehicle()
	if !mapMatching {
		m.SigmaRoad = 0
	}
	return m, model.NewVehicleRoute(m)
}

// ClusterConfig shapes NewClusterFilter: the global sub-filter ring is
// partitioned over simulated cluster nodes (the paper's §IX scale-up
// direction); inter-node exchange traffic is counted against a network
// profile.
type ClusterConfig struct {
	// Nodes, SubFiltersPerNode, ParticlesPerSubFilter shape the cluster.
	Nodes                 int
	SubFiltersPerNode     int
	ParticlesPerSubFilter int
	// ExchangeCount is t for the global ring exchange.
	ExchangeCount int
	// Network is "1GbE" (default), "10GbE" or "ib" (InfiniBand QDR).
	Network string
	// Seed derives every node's streams.
	Seed uint64
}

// NewClusterFilter builds the cluster-partitioned distributed filter.
// The concrete type (esthera/internal/cluster.Cluster behind the Filter
// interface) additionally supports fault injection and communication
// accounting; see cmd/esthera-cluster.
func NewClusterFilter(m Model, cfg ClusterConfig) (Filter, error) {
	var net cluster.NetworkProfile
	switch cfg.Network {
	case "", "1GbE":
		net = cluster.GigabitEthernet()
	case "10GbE":
		net = cluster.TenGigabitEthernet()
	case "ib", "IB-QDR":
		net = cluster.InfiniBandQDR()
	default:
		return nil, fmt.Errorf("esthera: unknown network profile %q", cfg.Network)
	}
	return cluster.New(m, cluster.Config{
		Nodes:             cfg.Nodes,
		SubFiltersPerNode: cfg.SubFiltersPerNode,
		ParticlesPer:      cfg.ParticlesPerSubFilter,
		ExchangeCount:     cfg.ExchangeCount,
		Network:           net,
	}, cfg.Seed)
}

// ClosedLoopResult is the outcome of RunClosedLoop.
type ClosedLoopResult struct {
	// PointingErr is the per-step angle (rad) between the arm camera's
	// optical axis and the true object direction.
	PointingErr []float64
	// EstErr is the per-step object-position estimation error (m).
	EstErr []float64
}

// RunClosedLoop reproduces the companion work's closed-loop setting
// (Chitchian et al., IEEE TCST 2013, cited as [30]): a PD controller
// drives the arm's joints from the particle filter's estimates so the
// camera tracks the moving object, while the true plant integrates the
// commands with actuator noise. cfg shapes the filter (DefaultConfig()
// works); joints configures the arm.
func RunClosedLoop(joints, steps int, cfg Config, seed uint64) (ClosedLoopResult, error) {
	// The path is offset from the arm base so the object's bearing is
	// well-conditioned (a figure through the base itself would demand
	// instantaneous 180° yaw flips of the plant).
	path := arm.Lemniscate{A: 0.4, Period: 200, CenterX: 0.55}
	m, _, err := arm.NewScenario(arm.Config{Joints: joints}, path)
	if err != nil {
		return ClosedLoopResult{}, err
	}
	f, err := NewFilter(m, cfg)
	if err != nil {
		return ClosedLoopResult{}, err
	}
	loop, err := control.NewLoop(m, path, f)
	if err != nil {
		return ClosedLoopResult{}, err
	}
	res := loop.Run(steps, seed)
	return ClosedLoopResult{PointingErr: res.PointingErr, EstErr: res.EstErr}, nil
}

// Track drives f through steps rounds of sc (measurements synthesized
// from ground truth with noise seeded by seed) and returns the per-step
// Euclidean error of the tracked position.
func Track(f Filter, sc Scenario, steps int, seed uint64) ([]float64, error) {
	if steps <= 0 {
		return nil, fmt.Errorf("esthera: non-positive steps %d", steps)
	}
	return metrics.Run(f, sc, steps, seed).Err, nil
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}
