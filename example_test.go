package esthera_test

import (
	"fmt"

	"esthera"
)

// The canonical flow: pick a scenario, build the distributed filter with
// the paper's Table II defaults, track, and inspect the error series.
func Example() {
	model, scenario, err := esthera.NewArmScenario(5)
	if err != nil {
		panic(err)
	}
	cfg := esthera.DefaultConfig()
	cfg.SubFilters, cfg.ParticlesPerSubFilter = 32, 32 // small for the example
	filter, err := esthera.NewFilter(model, cfg)
	if err != nil {
		panic(err)
	}
	errs, err := esthera.Track(filter, scenario, 50, 42)
	if err != nil {
		panic(err)
	}
	fmt.Println("steps tracked:", len(errs))
	// Output: steps tracked: 50
}

// Filters are interchangeable behind the Filter interface; the same
// tracking loop drives the centralized reference, the Kalman baselines,
// or the cluster-partitioned variant.
func ExampleNewCentralizedFilter() {
	model, scenario := esthera.NewUNGMScenario(7)
	filter, err := esthera.NewCentralizedFilter(model, 512, 1)
	if err != nil {
		panic(err)
	}
	errs, err := esthera.Track(filter, scenario, 25, 3)
	if err != nil {
		panic(err)
	}
	fmt.Println(filter.Name(), len(errs))
	// Output: centralized 25
}

// Configurations are plain values; invalid combinations are rejected at
// construction time, not at run time.
func ExampleNewFilter_validation() {
	model, _, _ := esthera.NewArmScenario(3)
	_, err := esthera.NewFilter(model, esthera.Config{
		SubFilters:            8,
		ParticlesPerSubFilter: 8,
		ExchangeScheme:        "ring",
		ExchangeCount:         4, // ring degree 2 × t=4 = 8 ≥ m: no native particles left
	})
	fmt.Println(err != nil)
	// Output: true
}
